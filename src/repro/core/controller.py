"""The Typhoon SDN controller (§3.4).

Implemented as the core control-plane application on the generic
:class:`~repro.sdn.controller.SdnController`. Faithful to the paper, it
is **stateless about stream applications**: logical and physical
topologies are always read from the central coordinator (Table 1); the
only local state is the data-plane view it learns from the switches
themselves (which worker port lives where, via PortStatus events) and
bookkeeping of the rules it has installed.

Responsibilities:

* generate and install the Table 3 flow rules for each managed topology
  (data unicast local/remote, one-to-many broadcast, ack paths,
  worker-to-controller);
* inject control tuples into workers via PacketOut (Table 2);
* collect application-layer worker statistics via METRIC_REQ/RESP
  (PacketIn), exposing them to other control-plane apps — the
  cross-layer information §4 builds on;
* for topologies that opt into ``reliable_control``, guarantee control
  tuple delivery: each tuple carries a sequence number, workers return
  CONTROL_ACK receipts, and unacked sequences are retried with
  exponential backoff until a retry budget is spent — so routing
  reconfigurations survive control-channel loss and delay faults.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..coordination.schema import GlobalState
from ..net.addresses import CONTROLLER_ADDRESS, TYPHOON_ETHERTYPE, WorkerAddress
from ..net.ethernet import DEFAULT_MTU, EthernetFrame
from ..sdn.controller import ControllerApp
from ..sdn.flow import (
    Action,
    GroupAction,
    Match,
    Meter,
    OFPP_CONTROLLER,
    Output,
    SetTunnelDst,
)
from ..sdn.group import GROUP_ALL, Bucket
from ..sdn.openflow import (
    DELETE,
    GroupMod,
    PORT_ADD,
    PORT_DELETE,
    PacketIn,
    PacketOut,
    PortStatus,
)
from ..sim.engine import Event
from ..streaming.acker import ACKER_COMPONENT
from ..streaming.physical import PhysicalTopology
from ..sim.trace import KIND_CONTROL
from ..streaming.serialize import decode_tuple, encode_tuple
from ..streaming.topology import ALL, SDN_SELECT, LogicalTopology
from ..streaming.tuples import CONTROL_STREAM
from . import control as ct
from . import rules as rule_templates
from .io_layer import TyphoonFabric
from .packets import Fragment, pack_tuples, unpack_payload

#: (dpid, match) uniquely identifies an installed rule for diffing.
_RuleKey = Tuple[str, Match]
_RuleValue = Tuple[int, Tuple[Action, ...]]
#: (dpid, group_id) identifies an installed group-table entry.
_GroupKey = Tuple[str, int]
_GroupValue = Tuple[str, Tuple[Bucket, ...]]

#: Group ids for replicated-broadcast fan-out: a private range keyed by
#: the sending worker id (load-balancer select groups use select_address
#: values, which carry the 0x8000 app-prefix bit — no collision).
_REPLICA_GROUP_BASE = 0x60000000


def replica_group_id(src_worker: int) -> int:
    return _REPLICA_GROUP_BASE | src_worker


class _PendingControl:
    """One reliable control tuple awaiting its CONTROL_ACK."""

    __slots__ = ("topology_id", "worker_id", "message", "attempts", "delay")

    def __init__(self, topology_id: str, worker_id: int,
                 message: "ct.ControlTuple", delay: float):
        self.topology_id = topology_id
        self.worker_id = worker_id
        self.message = message
        self.attempts = 1
        self.delay = delay


def _worker_of_port(port_name: str) -> Optional[int]:
    if port_name.startswith("w") and port_name[1:].isdigit():
        return int(port_name[1:])
    return None


class TyphoonControllerApp(ControllerApp):
    """Core Typhoon logic on the SDN control plane."""

    name = "typhoon-core"

    def __init__(self, state: GlobalState, fabric: TyphoonFabric):
        super().__init__()
        self.state = state
        self.fabric = fabric
        self.port_map: Dict[Tuple[str, int], int] = {}
        self.worker_host: Dict[int, str] = {}
        self.managed: Set[str] = set()
        self._installed: Dict[str, Dict[_RuleKey, _RuleValue]] = {}
        self._installed_groups: Dict[str, Dict[_GroupKey, _GroupValue]] = {}
        self.expected_removals: Set[int] = set()
        self.port_delete_listeners: List[Callable[[str, int], None]] = []
        self.port_add_listeners: List[Callable[[str, int], None]] = []
        self.latest_metrics: Dict[int, Dict[str, int]] = {}
        self._pending_metrics: Dict[int, Tuple[Event, Dict[int, dict], Set[int]]] = {}
        self._request_ids = itertools.count(1)
        self.rules_installed = 0
        self.rules_removed = 0
        self.groups_installed = 0
        self.groups_removed = 0
        self.control_tuples_sent = 0
        #: Reliable control channel (topologies with ``reliable_control``).
        self.reliable_topologies: Set[str] = set()
        self._control_seq = itertools.count(1)
        self._control_outstanding: Dict[int, _PendingControl] = {}
        self.control_retry_timeout = 0.25   # first retry check (seconds)
        self.control_backoff_factor = 2.0
        self.control_retry_max = 2.0        # backoff ceiling (seconds)
        self.control_retry_budget = 8       # total attempts per tuple
        self.control_acked = 0
        self.control_retries = 0
        self.control_exhausted = 0
        self.control_duplicate_acks = 0
        #: Spout workers that have been sent ACTIVATE (§3.2 step v gate:
        #: sources stay throttled until the data plane is programmed).
        self._spouts_activated: Set[int] = set()
        #: Optional bandwidth-allocation policy (duck-typed: exposes
        #: ``meter_for(app_id, src_worker, dst_worker, src_dpid,
        #: dst_dpid) -> Optional[int]``). When set, remote sender rules
        #: pass frames through the returned switch meter so inter-host
        #: flows are rate-policed. ``None`` (the default) leaves every
        #: rule byte-identical to the unmetered layout.
        self.bandwidth_policy = None

    # -- topology management -------------------------------------------------

    def manage(self, topology_id: str) -> None:
        """Start managing a topology's data-plane rules."""
        self.managed.add(topology_id)
        self._installed.setdefault(topology_id, {})
        logical = self.state.read_logical(topology_id)
        if logical is not None and getattr(logical.config,
                                           "reliable_control", False):
            self.reliable_topologies.add(topology_id)
        self.sync_topology(topology_id)

    def unmanage(self, topology_id: str) -> None:
        self.managed.discard(topology_id)
        self.reliable_topologies.discard(topology_id)
        for seq in [s for s, p in self._control_outstanding.items()
                    if p.topology_id == topology_id]:
            del self._control_outstanding[seq]
        installed = self._installed.pop(topology_id, {})
        for (dpid, match), (priority, _actions) in installed.items():
            if self.controller and dpid in self.controller.switches:
                self.controller.delete_flows(dpid, match, strict=True,
                                             priority=priority)
                self.rules_removed += 1
        groups = self._installed_groups.pop(topology_id, {})
        for (dpid, group_id), (group_type, _buckets) in groups.items():
            if self.controller and dpid in self.controller.switches:
                self.controller.send(dpid, GroupMod(DELETE, group_id,
                                                    group_type, ()))
                self.groups_removed += 1

    def sync_topology(self, topology_id: str) -> None:
        """Reconcile installed rules with the coordinator's global state."""
        if topology_id not in self.managed or self.controller is None:
            return
        logical = self.state.read_logical(topology_id)
        physical = self.state.read_physical(topology_id)
        if logical is None or physical is None:
            return
        desired_groups: Dict[_GroupKey, _GroupValue] = {}
        desired = self._compute_rules(logical, physical, desired_groups)
        # Group entries go down before the flows that reference them:
        # controller messages to one switch share the install latency and
        # apply FIFO, so a GroupAction never dangles on a managed path.
        installed_groups = self._installed_groups.setdefault(topology_id, {})
        for key, value in desired_groups.items():
            previous = installed_groups.get(key)
            if previous == value:
                continue
            dpid, group_id = key
            group_type, buckets = value
            self.controller.install_group(dpid, group_id, group_type,
                                          buckets,
                                          modify=previous is not None)
            installed_groups[key] = value
            self.groups_installed += 1
        installed = self._installed.setdefault(topology_id, {})
        for key, value in desired.items():
            if installed.get(key) == value:
                continue
            dpid, match = key
            priority, actions = value
            self.controller.install_flow(dpid, match, actions,
                                         priority=priority)
            installed[key] = value
            self.rules_installed += 1
        for key in [k for k in installed if k not in desired]:
            dpid, match = key
            priority, _actions = installed[key]
            if dpid in self.controller.switches:
                self.controller.delete_flows(dpid, match, strict=True,
                                             priority=priority)
                self.rules_removed += 1
            del installed[key]
        # Stale groups go after the flow deletes (mirror of the install
        # ordering: nothing references a group when it disappears).
        for key in [k for k in installed_groups if k not in desired_groups]:
            dpid, group_id = key
            group_type, _buckets = installed_groups[key]
            if dpid in self.controller.switches:
                self.controller.send(dpid, GroupMod(DELETE, group_id,
                                                    group_type, ()))
                self.groups_removed += 1
            del installed_groups[key]
        self._maybe_activate_spouts(topology_id, logical, physical)

    def _maybe_activate_spouts(self, topology_id: str,
                               logical: LogicalTopology,
                               physical: PhysicalTopology) -> None:
        """Unthrottle sources once the whole topology is wired up.

        Typhoon workers deploy in a deactivated state; the controller
        sends ACTIVATE control tuples (Table 2) once every worker's port
        is attached and the Table 3 rules are installed — the paper's
        step (v), "data tuple communication"."""
        if any(wid not in self.worker_host for wid in physical.assignments):
            return
        spout_ids = [
            wid for spout in logical.spouts()
            for wid in physical.worker_ids_for(spout.name)
        ]
        delay = (self.controller.costs.flow_install_latency
                 + self.controller.costs.openflow_rtt)
        for worker_id in spout_ids:
            if worker_id in self._spouts_activated:
                continue
            self._spouts_activated.add(worker_id)
            self.controller.engine.schedule(
                delay, self.send_control, topology_id, worker_id,
                ct.activate())

    # -- rule generation (Table 3) ----------------------------------------------

    def _port_of(self, worker_id: int) -> Optional[Tuple[str, int]]:
        dpid = self.worker_host.get(worker_id)
        if dpid is None:
            return None
        port = self.port_map.get((dpid, worker_id))
        if port is None:
            return None
        return dpid, port

    def _compute_rules(self, logical: LogicalTopology,
                       physical: PhysicalTopology,
                       groups_out: Optional[Dict[_GroupKey, _GroupValue]] = None,
                       ) -> Dict[_RuleKey, _RuleValue]:
        app_id = physical.app_id
        desired: Dict[_RuleKey, _RuleValue] = {}

        def add(dpid: str, match: Match, actions: Sequence[Action],
                priority: int) -> None:
            desired[(dpid, match)] = (priority, tuple(actions))

        unicast_pairs: Set[Tuple[int, int]] = set()
        broadcast_targets: Dict[str, Set[int]] = {}
        #: Broadcast sources feeding a replicated component: their fan-out
        #: moves from an action list to a GROUP_ALL group-table entry
        #: (GroupMod), the switch-assisted replication the design rides on.
        replicated_broadcasts: Set[str] = set()

        for edge in logical.edges:
            src_ids = physical.worker_ids_for(edge.src)
            dst_ids = physical.worker_ids_for(edge.dst)
            if edge.grouping.kind == ALL:
                broadcast_targets.setdefault(edge.src, set()).update(dst_ids)
                if getattr(logical.nodes[edge.dst], "replicas", 1) > 1:
                    # The one_to_many match is per source port, so a src
                    # broadcasting to any replicated dst uses the group
                    # path for its whole broadcast set.
                    replicated_broadcasts.add(edge.src)
            else:
                # SDN_SELECT edges also get unicast rules: they serve as
                # the fallback path until the load balancer app installs
                # its select group.
                for src_id in src_ids:
                    for dst_id in dst_ids:
                        unicast_pairs.add((src_id, dst_id))

        if logical.config.acking and ACKER_COMPONENT in logical.nodes:
            acker_ids = physical.worker_ids_for(ACKER_COMPONENT)
            spout_ids = [
                wid for spout in logical.spouts()
                for wid in physical.worker_ids_for(spout.name)
            ]
            for assignment in physical.assignments.values():
                if assignment.component == ACKER_COMPONENT:
                    continue
                for acker_id in acker_ids:
                    unicast_pairs.add((assignment.worker_id, acker_id))
            for acker_id in acker_ids:
                for spout_id in spout_ids:
                    unicast_pairs.add((acker_id, spout_id))

        for src_id, dst_id in sorted(unicast_pairs):
            src_loc = self._port_of(src_id)
            dst_loc = self._port_of(dst_id)
            if src_loc is None or dst_loc is None:
                continue
            src_dpid, src_port = src_loc
            dst_dpid, dst_port = dst_loc
            if src_dpid == dst_dpid:
                match, actions = rule_templates.local_transfer(
                    app_id, src_id, src_port, dst_id, dst_port)
                add(src_dpid, match, actions, rule_templates.PRIORITY_UNICAST)
            else:
                tunnel_out = self.fabric.host(src_dpid).tunnel_port
                match, actions = rule_templates.remote_transfer_sender(
                    app_id, src_id, src_port, dst_id, dst_dpid, tunnel_out)
                if self.bandwidth_policy is not None:
                    meter_id = self.bandwidth_policy.meter_for(
                        app_id, src_id, dst_id, src_dpid, dst_dpid)
                    if meter_id is not None:
                        actions = (Meter(meter_id),) + tuple(actions)
                add(src_dpid, match, actions, rule_templates.PRIORITY_UNICAST)
                tunnel_in = self.fabric.host(dst_dpid).tunnel_port
                match, actions = rule_templates.remote_transfer_receiver(
                    app_id, src_id, dst_id, tunnel_in, dst_port)
                add(dst_dpid, match, actions, rule_templates.PRIORITY_UNICAST)

        for src_component, targets in sorted(broadcast_targets.items()):
            for src_id in physical.worker_ids_for(src_component):
                src_loc = self._port_of(src_id)
                if src_loc is None:
                    continue
                src_dpid, src_port = src_loc
                local_ports: List[int] = []
                remote_hosts: Set[str] = set()
                remote_ports: Dict[str, List[int]] = {}
                for dst_id in sorted(targets):
                    dst_loc = self._port_of(dst_id)
                    if dst_loc is None:
                        continue
                    dst_dpid, dst_port = dst_loc
                    if dst_dpid == src_dpid:
                        local_ports.append(dst_port)
                    else:
                        remote_hosts.add(dst_dpid)
                        remote_ports.setdefault(dst_dpid, []).append(dst_port)
                tunnel_port = self.fabric.host(src_dpid).tunnel_port
                match, actions = rule_templates.one_to_many(
                    src_port, local_ports, sorted(remote_hosts),
                    tunnel_port)
                if (src_component in replicated_broadcasts
                        and groups_out is not None
                        and (local_ports or remote_hosts)):
                    group_id = replica_group_id(src_id)
                    buckets = [Bucket((Output(port),))
                               for port in local_ports]
                    for host in sorted(remote_hosts):
                        buckets.append(Bucket((
                            SetTunnelDst(host), Output(tunnel_port))))
                    groups_out[(src_dpid, group_id)] = (
                        GROUP_ALL, tuple(buckets))
                    actions = (GroupAction(group_id),)
                add(src_dpid, match, actions, rule_templates.PRIORITY_BROADCAST)
                for dst_dpid, ports in sorted(remote_ports.items()):
                    match, actions = rule_templates.one_to_many_receiver(
                        app_id, src_id, self.fabric.host(dst_dpid).tunnel_port,
                        sorted(ports))
                    add(dst_dpid, match, actions,
                        rule_templates.PRIORITY_BROADCAST)
        return desired

    def desired_rules(self, topology_id: str) -> Dict[_RuleKey, _RuleValue]:
        """The Table 3 rule set the coordinator state currently implies.

        Public so auditors (the chaos invariant checker) can compare the
        controller's intent against actual switch flow tables."""
        logical = self.state.read_logical(topology_id)
        physical = self.state.read_physical(topology_id)
        if logical is None or physical is None:
            return {}
        # Pass a throwaway group table so replicated broadcasts come out
        # as GroupActions, matching what sync_topology installs.
        return self._compute_rules(logical, physical, {})

    def desired_groups(self, topology_id: str) -> Dict[_GroupKey, _GroupValue]:
        """The group-table entries the coordinator state implies."""
        logical = self.state.read_logical(topology_id)
        physical = self.state.read_physical(topology_id)
        if logical is None or physical is None:
            return {}
        groups: Dict[_GroupKey, _GroupValue] = {}
        self._compute_rules(logical, physical, groups)
        return groups

    # -- high availability (warm standby + anti-entropy) -------------------------

    def snapshot(self) -> Dict:
        """Everything a warm standby needs to take over: the learned
        data-plane view and the shadow rule/group bookkeeping. Copied a
        level deep so the leader mutating afterwards does not alias the
        published state."""
        return {
            "port_map": dict(self.port_map),
            "worker_host": dict(self.worker_host),
            "managed": sorted(self.managed),
            "reliable_topologies": sorted(self.reliable_topologies),
            "installed": {tid: dict(rules)
                          for tid, rules in self._installed.items()},
            "installed_groups": {tid: dict(groups)
                                 for tid, groups in
                                 self._installed_groups.items()},
            "spouts_activated": sorted(self._spouts_activated),
            "expected_removals": sorted(self.expected_removals),
        }

    def restore(self, state: Dict) -> None:
        self.port_map = dict(state["port_map"])
        self.worker_host = dict(state["worker_host"])
        self.managed = set(state["managed"])
        self.reliable_topologies = set(state["reliable_topologies"])
        self._installed = {tid: dict(rules)
                           for tid, rules in state["installed"].items()}
        self._installed_groups = {tid: dict(groups)
                                  for tid, groups in
                                  state["installed_groups"].items()}
        self._spouts_activated = set(state["spouts_activated"])
        self.expected_removals = set(state["expected_removals"])

    def desired_flows(self) -> Dict[_RuleKey, _RuleValue]:
        """Full intended rule set for the post-failover anti-entropy
        sweep: the Table 3 rules the coordinator state implies for every
        managed topology, plus the worker-to-controller taps for every
        known worker port."""
        desired: Dict[_RuleKey, _RuleValue] = {}
        for topology_id in sorted(self.managed):
            desired.update(self.desired_rules(topology_id))
        for dpid, worker_id in sorted(self.port_map):
            port_no = self.port_map[(dpid, worker_id)]
            match, actions = rule_templates.worker_to_controller(port_no)
            desired[(dpid, match)] = (rule_templates.PRIORITY_CONTROL,
                                      tuple(actions))
        return desired

    # -- data-plane discovery -----------------------------------------------------

    def on_switch_reconnect(self, dpid: str) -> None:
        """A switch restarted and lost its tables: forget what we thought
        was installed there, then re-sync every managed topology (the
        per-port syncs that follow the restart's PORT_ADDs fill in rules
        as worker locations are re-learned)."""
        for installed in self._installed.values():
            for key in [k for k in installed if k[0] == dpid]:
                del installed[key]
        for groups in self._installed_groups.values():
            for key in [k for k in groups if k[0] == dpid]:
                del groups[key]
        for topology_id in sorted(self.managed):
            self.sync_topology(topology_id)

    def on_port_status(self, message: PortStatus) -> None:
        worker_id = _worker_of_port(message.port_name)
        if worker_id is None:
            return
        if message.reason == PORT_ADD:
            self.port_map[(message.dpid, worker_id)] = message.port_no
            self.worker_host[worker_id] = message.dpid
            match, actions = rule_templates.worker_to_controller(message.port_no)
            self.controller.install_flow(
                message.dpid, match, actions,
                priority=rule_templates.PRIORITY_CONTROL)
            for topology_id in self._topologies_of(worker_id):
                self.sync_topology(topology_id)
            for listener in list(self.port_add_listeners):
                listener(message.dpid, worker_id)
        elif message.reason == PORT_DELETE:
            self.port_map.pop((message.dpid, worker_id), None)
            if self.worker_host.get(worker_id) == message.dpid:
                del self.worker_host[worker_id]
            # A restarted spout comes back deactivated and needs a fresh
            # ACTIVATE once its port reappears.
            self._spouts_activated.discard(worker_id)
            for listener in list(self.port_delete_listeners):
                listener(message.dpid, worker_id)

    def _topologies_of(self, worker_id: int) -> List[str]:
        out = []
        for topology_id in sorted(self.managed):
            physical = self.state.read_physical(topology_id)
            if physical is not None and worker_id in physical.assignments:
                out.append(topology_id)
        return out

    # -- control tuples (Table 2) ------------------------------------------------------

    def send_control(self, topology_id: str, worker_id: int,
                     message: ct.ControlTuple) -> bool:
        """Inject one control tuple into a worker via PacketOut.

        For topologies that enabled ``reliable_control`` the tuple is
        sequence-stamped and tracked until the worker's CONTROL_ACK
        arrives; lost or delayed deliveries are retried with backoff."""
        if topology_id in self.reliable_topologies:
            seq = next(self._control_seq)
            payload = dict(message.payload)
            payload[ct.SEQ_KEY] = seq
            tracked = ct.ControlTuple(message.ctype, payload,
                                      message.request_id)
            self._control_outstanding[seq] = _PendingControl(
                topology_id, worker_id, tracked,
                delay=self.control_retry_timeout)
            sent = self._transmit_control(topology_id, worker_id, tracked)
            self.controller.engine.schedule(
                self.control_retry_timeout, self._check_control_ack, seq)
            return sent
        return self._transmit_control(topology_id, worker_id, message)

    def _check_control_ack(self, seq: int) -> None:
        pending = self._control_outstanding.get(seq)
        if pending is None:
            return  # acked (or its topology was unmanaged)
        if (pending.topology_id not in self.managed
                or pending.attempts >= self.control_retry_budget):
            del self._control_outstanding[seq]
            if pending.topology_id in self.managed:
                self.control_exhausted += 1
            return
        pending.attempts += 1
        self.control_retries += 1
        pending.delay = min(pending.delay * self.control_backoff_factor,
                            self.control_retry_max)
        self._transmit_control(pending.topology_id, pending.worker_id,
                               pending.message)
        self.controller.engine.schedule(
            pending.delay, self._check_control_ack, seq)

    def _transmit_control(self, topology_id: str, worker_id: int,
                          message: ct.ControlTuple) -> bool:
        physical = self.state.read_physical(topology_id)
        if physical is None:
            return False
        location = self._port_of(worker_id)
        if location is None:
            return False
        dpid, port = location
        # Build the stream tuple before encoding so the tracer can sample
        # control traffic too — Fig. 6 update phases then show where a
        # reconfiguration stalls, hop by hop, like any data tuple.
        stream_tuple = message.to_stream_tuple()
        tracer = self.fabric.tracer
        if tracer is not None and tracer.enabled:
            tracer.maybe_trace(stream_tuple, kind=KIND_CONTROL,
                               ctype=message.ctype, topology=topology_id,
                               dst_worker=worker_id)
        payloads, _ = pack_tuples([encode_tuple(stream_tuple)], DEFAULT_MTU)
        frame = EthernetFrame(
            dst=WorkerAddress(physical.app_id, worker_id),
            src=CONTROLLER_ADDRESS,
            ethertype=TYPHOON_ETHERTYPE,
            payload=payloads[0],
        )
        self.controller.packet_out(dpid, PacketOut(
            frame=frame, actions=(Output(port),), in_port=OFPP_CONTROLLER,
        ))
        self.control_tuples_sent += 1
        return True

    def control_channel_stats(self) -> Dict[str, int]:
        """Reliable-control bookkeeping (chaos snapshot / dashboards)."""
        return {
            "reliable_topologies": len(self.reliable_topologies),
            "sent": self.control_tuples_sent,
            "acked": self.control_acked,
            "retries": self.control_retries,
            "exhausted": self.control_exhausted,
            "outstanding": len(self._control_outstanding),
            "duplicate_acks": self.control_duplicate_acks,
        }

    def update_routing(self, topology_id: str, worker_id: int,
                       updates: Sequence[ct.RoutingUpdate]) -> bool:
        return self.send_control(topology_id, worker_id,
                                 ct.routing_update(list(updates)))

    def send_signal(self, topology_id: str, worker_id: int,
                    kind: str = "flush") -> bool:
        return self.send_control(topology_id, worker_id, ct.signal(kind))

    def query_metrics(self, topology_id: str, worker_ids: Sequence[int],
                      timeout: float = 1.0) -> Event:
        """Request stats from workers; the event fires with
        ``{worker_id: stats}`` once all reply or the timeout passes."""
        request_id = next(self._request_ids)
        gate = self.controller.engine.event()
        expected = set(worker_ids)
        collected: Dict[int, dict] = {}
        self._pending_metrics[request_id] = (gate, collected, expected)
        for worker_id in worker_ids:
            self.send_control(topology_id, worker_id,
                              ct.metric_request(request_id))
        self.controller.engine.schedule(
            timeout, self._finish_metrics, request_id)
        return gate

    def _finish_metrics(self, request_id: int) -> None:
        pending = self._pending_metrics.pop(request_id, None)
        if pending is None:
            return
        gate, collected, _expected = pending
        if not gate.triggered:
            gate.succeed(dict(collected))

    # -- PacketIn: worker -> controller traffic ----------------------------------------

    def on_packet_in(self, message: PacketIn) -> None:
        if message.frame.ethertype != TYPHOON_ETHERTYPE:
            return
        decoded = unpack_payload(message.frame.payload)
        if isinstance(decoded, Fragment):
            return  # control tuples are small; fragments unexpected
        for record in decoded:
            stream_tuple = decode_tuple(record)
            if stream_tuple.stream != CONTROL_STREAM:
                continue
            control = ct.ControlTuple.from_stream_tuple(stream_tuple)
            if control.ctype == ct.CONTROL_ACK:
                seq = control.payload.get("seq")
                if seq in self._control_outstanding:
                    del self._control_outstanding[seq]
                    self.control_acked += 1
                else:
                    # Receipt for a retry of an already-acked sequence.
                    self.control_duplicate_acks += 1
                continue
            if control.ctype != ct.METRIC_RESP:
                continue
            worker_id = control.payload["worker_id"]
            stats = control.payload["stats"]
            self.latest_metrics[worker_id] = stats
            pending = self._pending_metrics.get(control.request_id)
            if pending is None:
                continue
            gate, collected, expected = pending
            collected[worker_id] = stats
            if expected.issubset(collected):
                del self._pending_metrics[control.request_id]
                if not gate.triggered:
                    gate.succeed(dict(collected))

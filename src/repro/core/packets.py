"""Typhoon packet format: tuples inside custom Ethernet frames (Fig. 5).

The I/O layer's southbound side turns serialized tuples into frame
payloads and back, implementing the three mechanisms §3.3.1 calls out:

* **multiplexing** — multiple small tuples with the same source and
  destination are packed into one packet to save on throughput;
* **segmentation** — one large tuple is split across several packets and
  reassembled at the receiver;
* **batching** — callers hand over whole batches; per-batch overheads
  (JNI crossing, ring operations) are charged once per flush.

Payload layouts (all big-endian), following the Ethernet header:

``MULTI``:    ``u8 kind=0 | u16 count | count * (u32 len | tuple bytes)``
``FRAGMENT``: ``u8 kind=1 | u32 frag_id | u32 total_len | u32 offset |
              chunk bytes``
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Tuple, Union

from ..sim.audit import (
    R_PENDING_AT_CLOSE,
    R_REASSEMBLY_EVICTED,
    R_REASSEMBLY_GAP,
)

KIND_MULTI = 0
KIND_FRAGMENT = 1

_MULTI_HEAD = struct.Struct("!BH")
_RECORD_LEN = struct.Struct("!I")
_FRAG_HEAD = struct.Struct("!BIII")


class PacketError(ValueError):
    """Raised for malformed Typhoon packet payloads."""


@dataclass(frozen=True)
class Fragment:
    frag_id: int
    total_len: int
    offset: int
    chunk: bytes

    @property
    def is_last(self) -> bool:
        return self.offset + len(self.chunk) == self.total_len


def pack_tuples(encoded_tuples: List[bytes], mtu: int,
                next_frag_id: int = 0) -> Tuple[List[bytes], int]:
    """Pack serialized tuples into frame payloads of at most ``mtu`` bytes.

    Small tuples are multiplexed greedily; a tuple whose record would not
    fit in an empty MULTI payload is segmented into FRAGMENT payloads.
    Returns ``(payloads, next_frag_id)`` — the caller threads the fragment
    id counter between calls.
    """
    payloads, next_frag_id, _spans = pack_tuples_spans(
        encoded_tuples, mtu, next_frag_id)
    return payloads, next_frag_id


def pack_tuples_spans(
    encoded_tuples: List[bytes], mtu: int, next_frag_id: int = 0,
) -> Tuple[List[bytes], int, List[Optional[Tuple[int, int]]]]:
    """Like :func:`pack_tuples`, additionally reporting which input
    records each payload carries: ``spans[i]`` is the half-open
    ``(start, end)`` index range multiplexed into ``payloads[i]``, or
    ``None`` for FRAGMENT payloads (each carries a chunk of one record).
    The I/O layer uses the spans to annotate frames for same-process
    fast-path delivery."""
    if mtu <= _FRAG_HEAD.size + 1:
        raise ValueError("mtu too small: %d" % mtu)
    payloads: List[bytes] = []
    spans: List[Optional[Tuple[int, int]]] = []
    # The MULTI payload under construction is accumulated directly in a
    # bytearray (head patched in at flush) instead of a list of
    # per-record concatenations; len(current) tracks the mtu budget.
    head_size = _MULTI_HEAD.size
    current = bytearray(head_size)
    cur_len = head_size
    count = 0
    first_index = 0
    max_record_budget = mtu - head_size
    record_head = _RECORD_LEN.size
    pack_len = _RECORD_LEN.pack

    def flush_multi() -> None:
        nonlocal current, count, cur_len
        if not count:
            return
        _MULTI_HEAD.pack_into(current, 0, KIND_MULTI, count)
        payloads.append(bytes(current))
        spans.append((first_index, first_index + count))
        current = bytearray(head_size)
        cur_len = head_size
        count = 0

    for index, data in enumerate(encoded_tuples):
        dlen = len(data)
        record_len = record_head + dlen
        if record_len > max_record_budget:
            # Large tuple: segment it.
            flush_multi()
            chunk_budget = mtu - _FRAG_HEAD.size
            offset = 0
            while offset < dlen:
                chunk = data[offset:offset + chunk_budget]
                payloads.append(
                    _FRAG_HEAD.pack(KIND_FRAGMENT, next_frag_id,
                                    dlen, offset) + chunk
                )
                spans.append(None)
                offset += len(chunk)
            next_frag_id = (next_frag_id + 1) & 0xFFFFFFFF
            continue
        if cur_len + record_len > mtu:
            flush_multi()
        if not count:
            first_index = index
        current += pack_len(dlen)
        current += data
        cur_len += record_len
        count += 1
    flush_multi()
    return payloads, next_frag_id, spans


def unpack_payload(payload: bytes) -> Union[List[bytes], Fragment]:
    """Decode a frame payload: a list of tuple byte strings, or a Fragment."""
    if not payload:
        raise PacketError("empty payload")
    kind = payload[0]
    if kind == KIND_MULTI:
        _kind, count = _MULTI_HEAD.unpack_from(payload, 0)
        offset = _MULTI_HEAD.size
        records: List[bytes] = []
        for _ in range(count):
            if offset + _RECORD_LEN.size > len(payload):
                raise PacketError("truncated record length")
            (length,) = _RECORD_LEN.unpack_from(payload, offset)
            offset += _RECORD_LEN.size
            if offset + length > len(payload):
                raise PacketError("truncated record body")
            records.append(payload[offset:offset + length])
            offset += length
        if offset != len(payload):
            raise PacketError("%d trailing payload bytes" % (len(payload) - offset))
        return records
    if kind == KIND_FRAGMENT:
        _kind, frag_id, total_len, frag_offset = _FRAG_HEAD.unpack_from(payload, 0)
        chunk = payload[_FRAG_HEAD.size:]
        if frag_offset + len(chunk) > total_len:
            raise PacketError("fragment overruns total length")
        return Fragment(frag_id, total_len, frag_offset, chunk)
    raise PacketError("unknown packet kind 0x%02x" % kind)


class Reassembler:
    """Reassembles fragmented tuples, keyed by (source, frag id).

    Fragments of one tuple arrive in order on a FIFO path, but fragments
    of different tuples from different sources may interleave. ``source``
    is any hashable naming the sender; the I/O layer keys by
    ``(app_id, worker_id)`` so same-numbered workers of different
    applications can never collide.

    Accounting contract (the audit layer depends on it): ``dropped``
    counts *partial tuples discarded here* — one per non-empty buffer
    lost to a gap, a bounded-buffer eviction, or :meth:`drain`. A
    fragment that arrives with no buffer and a non-zero offset is a
    headless orphan: its tuple died wherever the head fragment was
    dropped and was already accounted there, so orphans are tallied in
    ``orphan_fragments`` (diagnostic) without touching ``dropped``.
    ``on_drop(key, reason)`` fires once per discarded partial tuple —
    ``key`` is the ``(source, frag_id)`` pair — so the owner can forward
    the loss to a delivery ledger with proper attribution.
    """

    def __init__(self, max_pending: int = 1024,
                 on_drop: Optional[Callable[[Tuple[Hashable, int], str],
                                            None]] = None,
                 on_discard_data: Optional[
                     Callable[[Tuple[Hashable, int], str, bytes],
                              None]] = None):
        self._pending: Dict[Tuple[Hashable, int], bytearray] = {}
        self.max_pending = max_pending
        self.dropped = 0
        self.evictions = 0
        self.orphan_fragments = 0
        self.on_drop = on_drop
        #: Like ``on_drop`` but also receives the partial buffer bytes.
        #: The buffer always starts at offset 0, so the tuple's fixed
        #: header (and with it any embedded trace id) is intact — the
        #: tracing layer uses this to close spans of lost tuples.
        self.on_discard_data = on_discard_data

    def _discard(self, key: Tuple[Hashable, int], reason: str) -> None:
        buffer = self._pending.pop(key)
        self.dropped += 1
        if self.on_drop is not None:
            self.on_drop(key, reason)
        if self.on_discard_data is not None:
            self.on_discard_data(key, reason, bytes(buffer))

    def feed(self, source: Hashable, fragment: Fragment) -> Optional[bytes]:
        """Absorb a fragment; returns the full tuple bytes when complete."""
        key = (source, fragment.frag_id)
        buffer = self._pending.get(key)
        if fragment.offset == 0:
            if buffer is not None:
                # Frag-id reuse: the previous tuple under this key never
                # completed and never will.
                self._discard(key, R_REASSEMBLY_GAP)
            if len(self._pending) >= self.max_pending:
                # Bounded buffer: evict only the oldest partial tuple
                # (dict preserves insertion order) and account for it —
                # never wipe every other source's progress.
                self.evictions += 1
                self._discard(next(iter(self._pending)),
                              R_REASSEMBLY_EVICTED)
            buffer = bytearray()
            self._pending[key] = buffer
        elif buffer is None:
            self.orphan_fragments += 1
            return None
        if fragment.offset != len(buffer):
            # Out-of-order / missing chunk: discard the partial tuple.
            self._discard(key, R_REASSEMBLY_GAP)
            return None
        buffer.extend(fragment.chunk)
        if len(buffer) == fragment.total_len:
            del self._pending[key]
            return bytes(buffer)
        return None

    def drain(self, reason: str = R_PENDING_AT_CLOSE) -> int:
        """Discard every partial tuple (owner closing), counting each."""
        count = len(self._pending)
        for key in list(self._pending):
            self._discard(key, reason)
        return count

    @property
    def pending_count(self) -> int:
        return len(self._pending)

"""Live debugger SDN control plane application (§4, Fig. 12, Table 5).

Inspecting a live pipeline in a traditional framework means
pre-provisioned debug workers receiving application-level tuple copies —
extra serializations that visibly depress throughput. Typhoon instead
**dynamically deploys** a debug worker next to the tapped component and
installs packet-mirroring flow rules: the switch duplicates matched
frames to the debug port at the network layer, so the source worker does
no additional work.

Per-worker granularity, on-demand provisioning, no multiple
serialization — the Table 5 capability matrix is generated from the
capability flags this class (and the Storm tap helper) declare.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ...sdn.controller import ControllerApp
from ...sdn.flow import Match
from ...streaming.physical import WorkerAssignment
from ...streaming.topology import BOLT, Bolt, LogicalNode
from ...streaming.tuples import StreamTuple
from .. import rules as rule_templates
from ..update import wait_for_ports

DEBUG_COMPONENT = "__debug__"

#: Capability flags used to render Table 5.
TYPHOON_DEBUGGER_CAPABILITIES = {
    "granularity": "per-worker",
    "resources": "memory allocated on demand",
    "dynamic_provisioning": True,
    "multiple_serialization": False,
}

STORM_DEBUGGER_CAPABILITIES = {
    "granularity": "entire topology or a set of workers",
    "resources": "pre-provisioned memory and TCP connections",
    "dynamic_provisioning": False,
    "multiple_serialization": True,
}


class CollectingDebugBolt(Bolt):
    """Default debug worker: counts and retains a window of tuples.

    Custom filtering logic / display formats are supplied by passing a
    different factory to :meth:`LiveDebugger.attach`.
    """

    def __init__(self, keep_last: int = 100,
                 predicate: Optional[Callable[[StreamTuple], bool]] = None):
        self.keep_last = keep_last
        self.predicate = predicate
        self.seen = 0
        self.matched = 0
        self.window: List[Tuple] = []

    def execute(self, stream_tuple: StreamTuple, collector) -> None:
        self.seen += 1
        if self.predicate is not None and not self.predicate(stream_tuple):
            return
        self.matched += 1
        self.window.append(stream_tuple.values)
        if len(self.window) > self.keep_last:
            self.window.pop(0)


class _Tap:
    def __init__(self, topology_id: str, component: str, worker_id: int):
        self.topology_id = topology_id
        self.component = component
        self.debug_worker_id = worker_id
        #: (dpid, match, priority) of installed mirror rules
        self.mirror_rules: List[Tuple[str, Match, int]] = []


class LiveDebugger(ControllerApp):
    """Deploys debug workers and network-level mirror rules on demand."""

    name = "live-debugger"

    #: Mirror rules sit above the base unicast rules they shadow.
    MIRROR_PRIORITY_BOOST = 50

    def __init__(self, cluster):
        super().__init__()
        self.cluster = cluster
        self.taps: Dict[Tuple[str, str], _Tap] = {}
        self.attaches = 0
        self.detaches = 0

    # -- public API -------------------------------------------------------------

    def tap(self, topology_id: str, component: str,
            debug_factory: Optional[Callable] = None):
        """Dynamically tap a component: returns a process whose value is
        the debug worker's executor once mirroring is active."""
        if (topology_id, component) in self.taps:
            raise RuntimeError("component %r already tapped" % component)
        return self.controller.engine.process(
            self._tap(topology_id, component,
                         debug_factory or CollectingDebugBolt),
            name="debug-attach:%s" % component,
        )

    def untap(self, topology_id: str, component: str,
              kill_worker: bool = True) -> None:
        """Remove mirroring (and optionally the debug worker)."""
        tap = self.taps.pop((topology_id, component), None)
        if tap is None:
            return
        for dpid, match, priority in tap.mirror_rules:
            self.controller.delete_flows(dpid, match, strict=True,
                                         priority=priority)
        self.detaches += 1
        if kill_worker:
            self._remove_debug_worker(topology_id, tap.debug_worker_id)

    def debug_executor(self, topology_id: str, component: str):
        tap = self.taps.get((topology_id, component))
        if tap is None:
            return None
        return self.cluster.executor(tap.debug_worker_id)

    # -- attach procedure ----------------------------------------------------------

    def _tap(self, topology_id: str, component: str, factory):
        cluster = self.cluster
        record = cluster.manager.topologies[topology_id]
        workers = record.physical.workers_for(component)
        if not workers:
            raise RuntimeError("component %r has no workers" % component)
        # Debug node joins the logical topology so the worker factory can
        # build it; it subscribes to nothing — mirroring happens in rules.
        if DEBUG_COMPONENT not in record.logical.nodes:
            record.logical = record.logical.clone()
            record.logical.nodes[DEBUG_COMPONENT] = LogicalNode(
                name=DEBUG_COMPONENT, kind=BOLT, factory=factory,
                parallelism=1,
            )
        else:
            record.logical = record.logical.with_factory(
                DEBUG_COMPONENT, factory)
        cluster.state.write_logical(topology_id, record.logical)

        # Place the debug worker on the tapped component's host so the
        # mirror is a pure local port copy.
        host = workers[0].hostname
        worker_id = cluster.manager.allocator.allocate()
        assignment = WorkerAssignment(
            worker_id=worker_id, component=DEBUG_COMPONENT,
            task_index=0, hostname=host,
        )
        record.physical = record.physical.add_worker(assignment)
        record.assignment_times[worker_id] = cluster.engine.now
        cluster.state.write_physical(topology_id, record.physical)
        cluster.manager.agent_for(host).launch(topology_id, assignment)
        yield from wait_for_ports(cluster, [worker_id])

        tap = _Tap(topology_id, component, worker_id)
        self._install_mirrors(tap, record)
        self.taps[(topology_id, component)] = tap
        self.attaches += 1
        yield cluster.costs.flow_install_latency + cluster.costs.openflow_rtt
        return cluster.executor(worker_id)

    def _install_mirrors(self, tap: _Tap, record) -> None:
        """Shadow every egress rule of the tapped workers with a copy that
        also outputs to the debug port."""
        cluster = self.cluster
        app = cluster.app
        debug_loc = app._port_of(tap.debug_worker_id)
        if debug_loc is None:
            raise RuntimeError("debug worker has no port")
        debug_dpid, debug_port = debug_loc
        tapped_ids = set(record.physical.worker_ids_for(tap.component))
        installed = app._installed.get(tap.topology_id, {})
        for (dpid, match), (priority, actions) in sorted(
                installed.items(), key=lambda kv: repr(kv[0])):
            if dpid != debug_dpid:
                continue
            if match.dl_src is None:
                continue
            if match.dl_src.worker_id not in tapped_ids:
                continue
            mirror_match, mirror_actions = rule_templates.mirror_rule(
                match, actions, debug_port)
            mirror_priority = priority + self.MIRROR_PRIORITY_BOOST
            self.controller.install_flow(dpid, mirror_match, mirror_actions,
                                         priority=mirror_priority)
            tap.mirror_rules.append((dpid, mirror_match, mirror_priority))

    def _remove_debug_worker(self, topology_id: str, worker_id: int) -> None:
        cluster = self.cluster
        record = cluster.manager.topologies.get(topology_id)
        if record is None:
            return
        assignment = record.physical.assignments.get(worker_id)
        if assignment is None:
            return
        cluster.app.expected_removals.add(worker_id)
        cluster.manager.agent_for(assignment.hostname).kill(worker_id)
        record.physical = record.physical.remove_worker(worker_id)
        record.assignment_times.pop(worker_id, None)
        cluster.state.write_physical(topology_id, record.physical)
        cluster.app.expected_removals.discard(worker_id)

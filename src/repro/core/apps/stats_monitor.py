"""Cross-layer statistics monitor (§4's enabling mechanism).

The Typhoon controller can "exploit cross-layer information from the
network (e.g., port/flow statistics and status events) and application
(e.g., worker statistics) layers". This app materializes that: it
periodically polls

* **network-layer** flow statistics from every switch (per-rule packet
  and byte counters, keyed back to logical edges via the Table-3 match
  fields), and port statistics (tx/rx/drops per worker port), and
* **application-layer** worker statistics via METRIC_REQ control tuples
  (falling back to coordinator heartbeats for saturated workers),

and exposes a merged per-edge / per-worker view other control-plane
applications (or operators, via the report) can act on — the same
information the auto-scaler and load balancer consume ad hoc.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...sdn.controller import ControllerApp
from ...sdn.openflow import FlowStatsReply, PortStatsReply
from ...sim.engine import Interrupt


@dataclass
class EdgeStats:
    """Network-layer view of one logical edge (src worker -> dst)."""

    src_worker: int
    dst_worker: Optional[int]    # None for broadcast rules
    dpid: str
    packets: int = 0
    bytes: int = 0

    @property
    def is_broadcast(self) -> bool:
        return self.dst_worker is None


@dataclass
class WorkerView:
    """Merged cross-layer view of one worker."""

    worker_id: int
    dpid: str = ""
    rx_packets: int = 0
    tx_packets: int = 0
    tx_dropped: int = 0
    app_stats: Dict[str, int] = field(default_factory=dict)


class StatsMonitor(ControllerApp):
    """Periodic cross-layer statistics collection."""

    name = "stats-monitor"

    def __init__(self, cluster, topology_id: str, poll_interval: float = 5.0):
        super().__init__()
        self.cluster = cluster
        self.topology_id = topology_id
        self.poll_interval = poll_interval
        self.edge_stats: Dict[Tuple[str, int, Optional[int]], EdgeStats] = {}
        self.worker_views: Dict[int, WorkerView] = {}
        self.polls = 0
        self._task = None

    def on_start(self) -> None:
        self._task = self.controller.engine.process(
            self._poll_loop(), name="stats-monitor")

    def on_stop(self) -> None:
        if self._task is not None:
            self._task.interrupt("stop")

    # -- polling ------------------------------------------------------------

    def _poll_loop(self):
        while True:
            try:
                yield self.poll_interval
            except Interrupt:
                return
            record = self.cluster.manager.topologies.get(self.topology_id)
            if record is None:
                continue
            self.polls += 1
            # Network layer: flow + port stats from every switch.
            for dpid in sorted(self.controller.switches):
                flow_gate = self.controller.request_flow_stats(dpid)
                port_gate = self.controller.request_port_stats(dpid)
                try:
                    flow_reply = yield flow_gate
                    port_reply = yield port_gate
                except Interrupt:
                    return
                self._absorb_flow_stats(dpid, flow_reply)
                self._absorb_port_stats(dpid, port_reply)
            # Application layer: worker statistics.
            worker_ids = sorted(record.physical.assignments)
            gate = self.cluster.app.query_metrics(self.topology_id,
                                                  worker_ids, timeout=1.0)
            try:
                replies = yield gate
            except Interrupt:
                return
            for worker_id in worker_ids:
                stats = replies.get(worker_id)
                if stats is None:
                    beat = self.cluster.state.read_beat(self.topology_id,
                                                        worker_id)
                    stats = (beat or {}).get("stats")
                if stats is not None:
                    view = self.worker_views.setdefault(
                        worker_id, WorkerView(worker_id))
                    view.app_stats = dict(stats)

    def _absorb_flow_stats(self, dpid: str, reply: FlowStatsReply) -> None:
        for entry in reply.entries:
            match = entry.match
            if match.dl_src is None:
                continue  # control rules etc.
            src = match.dl_src.worker_id
            dst: Optional[int]
            if match.dl_dst is None or match.dl_dst.is_broadcast:
                dst = None
            elif match.dl_dst.is_controller:
                continue
            else:
                dst = match.dl_dst.worker_id
            key = (dpid, src, dst)
            stats = self.edge_stats.setdefault(
                key, EdgeStats(src_worker=src, dst_worker=dst, dpid=dpid))
            stats.packets = entry.packets
            stats.bytes = entry.bytes

    def _absorb_port_stats(self, dpid: str, reply: PortStatsReply) -> None:
        for entry in reply.entries:
            if not entry.port_name.startswith("w"):
                continue
            try:
                worker_id = int(entry.port_name[1:])
            except ValueError:
                continue
            view = self.worker_views.setdefault(worker_id,
                                                WorkerView(worker_id))
            view.dpid = dpid
            view.rx_packets = entry.rx_packets
            view.tx_packets = entry.tx_packets
            view.tx_dropped = entry.tx_dropped

    # -- queries --------------------------------------------------------------

    def edges_from(self, worker_id: int) -> List[EdgeStats]:
        return sorted(
            (s for s in self.edge_stats.values()
             if s.src_worker == worker_id),
            key=lambda s: (s.dpid, s.dst_worker if s.dst_worker is not None
                           else -1),
        )

    def busiest_edges(self, top: int = 5) -> List[EdgeStats]:
        return sorted(self.edge_stats.values(),
                      key=lambda s: -s.bytes)[:top]

    def worker(self, worker_id: int) -> Optional[WorkerView]:
        return self.worker_views.get(worker_id)

    def report(self) -> str:
        """Operator-readable cross-layer summary."""
        lines = ["cross-layer statistics for %r (poll #%d)"
                 % (self.topology_id, self.polls)]
        lines.append("-- workers --")
        for worker_id in sorted(self.worker_views):
            view = self.worker_views[worker_id]
            lines.append(
                "  w%-4d host=%-8s net rx=%d tx=%d drop=%d app %s"
                % (worker_id, view.dpid, view.rx_packets, view.tx_packets,
                   view.tx_dropped,
                   {k: view.app_stats[k] for k in sorted(view.app_stats)}))
        lines.append("-- busiest edges --")
        for stats in self.busiest_edges():
            dst = "broadcast" if stats.is_broadcast else "w%d" % stats.dst_worker
            lines.append("  w%d -> %-10s on %-8s packets=%d bytes=%d"
                         % (stats.src_worker, dst, stats.dpid,
                            stats.packets, stats.bytes))
        ledger = getattr(self.cluster, "ledger", None)
        if ledger is not None:
            lines.append("-- tuple drops (delivery ledger) --")
            rows = ledger.drop_rows()
            if rows:
                for topology, layer, reason, count in rows:
                    lines.append("  %-12s %-12s %-20s %d"
                                 % (topology, layer, reason, count))
            else:
                lines.append("  (none)")
        return "\n".join(lines)

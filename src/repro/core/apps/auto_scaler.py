"""Auto-scaler SDN control plane application (§4, Fig. 11).

Network-level statistics alone cannot tell whether a worker is
overloaded, so the auto-scaler polls **application-layer metrics** —
tuple queue level and queue memory — from workers via METRIC_REQ control
tuples, and initiates scale up/down through the dynamic topology manager
when the metrics cross the configured thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ...sdn.controller import ControllerApp
from ...sim.engine import Interrupt
from ...streaming.acker import ACKER_COMPONENT


@dataclass
class ScalingPolicy:
    """Thresholds and bounds for one monitored component."""

    high_queue_depth: int = 200        # deliveries queued -> overloaded
    low_queue_depth: int = 5           # sustained idle -> scale down
    high_queue_bytes: int = 16 * 1024 * 1024
    min_parallelism: int = 1
    max_parallelism: int = 8
    cooldown: float = 30.0             # settle time between actions
    low_intervals_required: int = 3    # consecutive quiet polls to shrink


class AutoScaler(ControllerApp):
    """Scales component parallelism from worker queue metrics."""

    name = "auto-scaler"

    def __init__(self, cluster, topology_id: str,
                 components: Optional[Sequence[str]] = None,
                 policy: Optional[ScalingPolicy] = None,
                 poll_interval: float = 5.0):
        super().__init__()
        self.cluster = cluster
        self.topology_id = topology_id
        self.components = list(components) if components else None
        self.policy = policy or ScalingPolicy()
        self.poll_interval = poll_interval
        self.scale_ups = 0
        self.scale_downs = 0
        self.last_action_time: Dict[str, float] = {}
        self._low_streak: Dict[str, int] = {}
        self._task = None

    def on_start(self) -> None:
        engine = self.controller.engine
        self._task = engine.process(self._poll_loop(), name="auto-scaler")

    def on_stop(self) -> None:
        if self._task is not None:
            self._task.interrupt("stop")

    # -- polling loop -----------------------------------------------------------

    def _monitored_components(self, record) -> Sequence[str]:
        if self.components is not None:
            return [c for c in self.components if c in record.logical.nodes]
        return [name for name, node in record.logical.nodes.items()
                if node.kind == "bolt" and name != ACKER_COMPONENT]

    def _poll_loop(self):
        engine = self.controller.engine
        while True:
            try:
                yield self.poll_interval
            except Interrupt:
                return
            record = self.cluster.manager.topologies.get(self.topology_id)
            if record is None:
                continue
            for component in self._monitored_components(record):
                worker_ids = record.physical.worker_ids_for(component)
                if not worker_ids:
                    continue
                gate = self.cluster.app.query_metrics(
                    self.topology_id, worker_ids, timeout=1.0)
                try:
                    replies = yield gate
                except Interrupt:
                    return
                replies = dict(replies)
                # An overloaded worker cannot answer a METRIC_REQ promptly
                # (the control tuple queues behind its backlog), so fall
                # back to the last heartbeat snapshot in the coordinator —
                # the paper's "retrieved from ZooKeeper or workers".
                for worker_id in worker_ids:
                    if worker_id in replies:
                        continue
                    beat = self.cluster.state.read_beat(self.topology_id,
                                                        worker_id)
                    if beat and "stats" in beat:
                        replies[worker_id] = beat["stats"]
                if replies:
                    self._evaluate(record, component, replies)

    # -- decisions ------------------------------------------------------------------

    def _evaluate(self, record, component: str,
                  replies: Dict[int, dict]) -> None:
        engine = self.controller.engine
        policy = self.policy
        last = self.last_action_time.get(component, -policy.cooldown)
        if engine.now - last < policy.cooldown:
            return
        depths = [stats.get("queue_depth", 0) for stats in replies.values()]
        byte_sizes = [stats.get("queue_bytes", 0) for stats in replies.values()]
        parallelism = record.logical.node(component).parallelism
        overloaded = (max(depths) >= policy.high_queue_depth
                      or max(byte_sizes) >= policy.high_queue_bytes)
        quiet = max(depths) <= policy.low_queue_depth

        if overloaded and parallelism < policy.max_parallelism:
            self._low_streak[component] = 0
            self.scale_ups += 1
            self.last_action_time[component] = engine.now
            self.cluster.topology_manager.set_parallelism(
                self.topology_id, component, parallelism + 1)
            return
        if quiet and parallelism > policy.min_parallelism:
            streak = self._low_streak.get(component, 0) + 1
            self._low_streak[component] = streak
            if streak >= policy.low_intervals_required:
                self._low_streak[component] = 0
                self.scale_downs += 1
                self.last_action_time[component] = engine.now
                self.cluster.topology_manager.set_parallelism(
                    self.topology_id, component, parallelism - 1)
        else:
            self._low_streak[component] = 0

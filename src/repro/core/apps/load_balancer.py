"""SDN-level load balancer control plane application (§4).

Round-robin shuffle routing is unfair when tuple sizes are skewed or the
cluster is heterogeneous. This app offloads the routing decision itself
to the network: senders address frames to a virtual *select address* and
the switch rewrites the destination worker ID in a **weighted round
robin** fashion using a select-type group. Weights are adjustable at
runtime by the controller — manually, or automatically from cross-layer
statistics (per-worker queue depths via METRIC_REQ plus switch port
stats).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...sdn.controller import ControllerApp
from ...sdn.flow import GroupAction, Match, Output, SetDlDst, SetTunnelDst
from ...sdn.group import GROUP_SELECT, Bucket
from ...sim.engine import Interrupt
from ...net.addresses import TYPHOON_ETHERTYPE, WorkerAddress
from ...streaming.topology import SDN_SELECT, Grouping
from .. import rules as rule_templates
from ..control import RoutingUpdate


class SdnLoadBalancer(ControllerApp):
    """Weighted-round-robin destination rewriting in the switches."""

    name = "sdn-load-balancer"

    def __init__(self, cluster):
        super().__init__()
        self.cluster = cluster
        #: (topology, src, dst) -> {dpid: group_id}
        self.groups: Dict[Tuple[str, str, str], Dict[str, int]] = {}
        #: current weights per balanced edge
        self.weights: Dict[Tuple[str, str, str], Dict[int, int]] = {}
        self._next_group_id = 1
        self.rebalances = 0
        self._auto_task = None

    # -- public API ---------------------------------------------------------

    def enable(self, topology_id: str, src: str, dst: str,
               weights: Optional[Dict[int, int]] = None) -> None:
        """Offload routing on the src -> dst edge to the SDN layer."""
        record = self.cluster.manager.topologies[topology_id]
        edge = self._edge(record, src, dst)
        dst_ids = record.physical.worker_ids_for(dst)
        if not dst_ids:
            raise RuntimeError("edge %s->%s has no destination workers"
                               % (src, dst))
        weights = dict(weights or {wid: 1 for wid in dst_ids})
        key = (topology_id, src, dst)
        self.weights[key] = weights
        self.groups.setdefault(key, {})
        self._install_groups(key, record, edge.stream, weights)
        # Tell the source workers to stop routing and emit to the select
        # address instead (ROUTING control tuple with SDN_SELECT policy).
        for worker_id in record.physical.worker_ids_for(src):
            self.cluster.app.update_routing(topology_id, worker_id, [
                RoutingUpdate(
                    dst_component=dst, stream=edge.stream,
                    next_hops=dst_ids, grouping_kind=SDN_SELECT,
                ),
            ])

    def set_weights(self, topology_id: str, src: str, dst: str,
                    weights: Dict[int, int]) -> None:
        """Adjust WRR weights at runtime."""
        key = (topology_id, src, dst)
        if key not in self.groups:
            raise KeyError("edge not balanced: %s->%s" % (src, dst))
        record = self.cluster.manager.topologies[topology_id]
        edge = self._edge(record, src, dst)
        self.weights[key] = dict(weights)
        self._install_groups(key, record, edge.stream, weights, modify=True)
        self.rebalances += 1

    def disable(self, topology_id: str, src: str, dst: str,
                grouping: Optional[Grouping] = None) -> None:
        """Return the edge to worker-level routing."""
        key = (topology_id, src, dst)
        self.groups.pop(key, None)
        self.weights.pop(key, None)
        record = self.cluster.manager.topologies[topology_id]
        edge = self._edge(record, src, dst)
        restored = grouping or Grouping("shuffle")
        for worker_id in record.physical.worker_ids_for(src):
            self.cluster.app.update_routing(topology_id, worker_id, [
                RoutingUpdate(
                    dst_component=dst, stream=edge.stream,
                    next_hops=record.physical.worker_ids_for(dst),
                    grouping_kind=restored.kind,
                    grouping_fields=tuple(restored.fields),
                ),
            ])

    def auto_adjust(self, topology_id: str, src: str, dst: str,
                    interval: float = 5.0) -> None:
        """Periodically reweight inversely to each worker's queue depth
        (application metric) — deeper queue, lower weight."""
        key = (topology_id, src, dst)

        def loop():
            while True:
                try:
                    yield interval
                except Interrupt:
                    return
                record = self.cluster.manager.topologies.get(topology_id)
                if record is None or key not in self.groups:
                    continue
                dst_ids = record.physical.worker_ids_for(dst)
                gate = self.cluster.app.query_metrics(topology_id, dst_ids,
                                                      timeout=1.0)
                try:
                    replies = yield gate
                except Interrupt:
                    return
                if not replies:
                    continue
                weights = {}
                for wid in dst_ids:
                    depth = replies.get(wid, {}).get("queue_depth", 0)
                    weights[wid] = max(1, 100 // (1 + depth))
                self.set_weights(topology_id, src, dst, weights)

        self._auto_task = self.controller.engine.process(
            loop(), name="lb-auto:%s->%s" % (src, dst))

    def on_stop(self) -> None:
        if self._auto_task is not None:
            self._auto_task.interrupt("stop")

    # -- group installation ------------------------------------------------------

    def _edge(self, record, src: str, dst: str):
        for edge in record.logical.edges:
            if edge.src == src and edge.dst == dst:
                return edge
        raise KeyError("no edge %s->%s" % (src, dst))

    def _install_groups(self, key, record, stream: int,
                        weights: Dict[int, int], modify: bool = False) -> None:
        """One select group per switch hosting a source worker, plus the
        rule steering the edge's virtual address into it."""
        topology_id, src, dst = key
        app = self.cluster.app
        app_id = record.physical.app_id
        virtual = rule_templates.select_address(app_id, dst, stream)
        src_hosts: Dict[str, List[int]] = {}
        for worker in record.physical.workers_for(src):
            loc = app._port_of(worker.worker_id)
            if loc is None:
                continue
            dpid, port = loc
            src_hosts.setdefault(dpid, []).append(port)

        for dpid, src_ports in sorted(src_hosts.items()):
            buckets = []
            for dst_id in sorted(weights):
                weight = weights[dst_id]
                loc = app._port_of(dst_id)
                if loc is None:
                    continue
                dst_dpid, dst_port = loc
                rewritten = SetDlDst(WorkerAddress(app_id, dst_id))
                if dst_dpid == dpid:
                    actions = (rewritten, Output(dst_port))
                else:
                    tunnel = self.cluster.fabric.host(dpid).tunnel_port
                    actions = (rewritten, SetTunnelDst(dst_dpid),
                               Output(tunnel))
                buckets.append(Bucket(actions, weight=weight))
            if not buckets:
                continue
            group_id = self.groups[key].get(dpid)
            is_new = group_id is None
            if is_new:
                group_id = self._next_group_id
                self._next_group_id += 1
                self.groups[key][dpid] = group_id
            self.controller.install_group(
                dpid, group_id, GROUP_SELECT, buckets,
                modify=modify and not is_new)
            if is_new:
                for src_port in src_ports:
                    match = Match(in_port=src_port, dl_dst=virtual,
                                  ether_type=TYPHOON_ETHERTYPE)
                    self.controller.install_flow(
                        dpid, match, (GroupAction(group_id),),
                        priority=rule_templates.PRIORITY_UNICAST + 20)

"""SDN control plane applications (§4): fault detector, live debugger,
SDN load balancer, auto-scaler and bandwidth allocator."""

from .auto_scaler import AutoScaler, ScalingPolicy
from .bandwidth_allocator import BandwidthAllocator
from .fault_detector import FaultDetector
from .live_debugger import (
    DEBUG_COMPONENT,
    STORM_DEBUGGER_CAPABILITIES,
    TYPHOON_DEBUGGER_CAPABILITIES,
    CollectingDebugBolt,
    LiveDebugger,
)
from .load_balancer import SdnLoadBalancer
from .stats_monitor import EdgeStats, StatsMonitor, WorkerView

__all__ = [
    "DEBUG_COMPONENT",
    "STORM_DEBUGGER_CAPABILITIES",
    "TYPHOON_DEBUGGER_CAPABILITIES",
    "AutoScaler",
    "BandwidthAllocator",
    "CollectingDebugBolt",
    "FaultDetector",
    "LiveDebugger",
    "ScalingPolicy",
    "EdgeStats",
    "StatsMonitor",
    "WorkerView",
    "SdnLoadBalancer",
]

"""Fault detector SDN control plane application (§4, Fig. 10).

Traditional frameworks detect a dead worker from missed heartbeats —
30 seconds by default — during which upstream workers keep routing
tuples into a black hole. The Typhoon fault detector instead reacts to
the switch's *unexpected port removal* event (a dead worker's port
disappears within milliseconds) and immediately repoints the affected
predecessors' routing state to the surviving workers of the same
component, well before any heartbeat timeout or rescheduling completes.

When the worker comes back (its port reappears and survives a probation
window), routing is restored to the full worker set.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ...sdn.controller import ControllerApp
from ..update import predecessor_routing_updates


class FaultDetector(ControllerApp):
    """Redirects traffic around dead workers on port-removal events."""

    name = "fault-detector"

    def __init__(self, cluster, restore_probation: float = 0.0):
        super().__init__()
        self.cluster = cluster
        self.restore_probation = restore_probation
        #: worker_id -> (topology_id, component) currently redirected-around
        self.redirected: Dict[int, Tuple[str, str]] = {}
        self.detections = 0
        self.restores = 0
        self.detection_times: List[float] = []
        #: Port deletions with no surviving worker to redirect to — the
        #: detector can do nothing but wait for supervisor/heartbeat
        #: recovery. Counted and recorded so the condition is observable
        #: (``repro chaos`` / ``GET /chaos``) instead of silent.
        self.dead_ends = 0
        self.dead_end_events: List[Dict[str, Any]] = []

    def on_start(self) -> None:
        app = self._core()
        app.port_delete_listeners.append(self._on_port_delete)
        app.port_add_listeners.append(self._on_port_add)

    def _core(self):
        """The core Typhoon app on the *same* controller instance. Under
        a replicated control plane each replica hosts its own fault
        detector, which must act on its co-located core app rather than
        whichever replica currently leads."""
        if self.controller is not None:
            try:
                return self.controller.app("typhoon-core")
            except KeyError:
                pass
        return self.cluster.app

    # -- warm-standby state sync -------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        return {"redirected": dict(self.redirected)}

    def restore(self, state: Dict[str, Any]) -> None:
        self.redirected = dict(state["redirected"])

    # -- failure path ---------------------------------------------------------

    def _on_port_delete(self, dpid: str, worker_id: int) -> None:
        app = self._core()
        if worker_id in app.expected_removals:
            return  # planned removal (stable topology update)
        located = self._locate(worker_id)
        if located is None:
            return
        topology_id, component = located
        record = self.cluster.manager.topologies.get(topology_id)
        if record is None:
            return
        survivors = [
            wid for wid in record.physical.worker_ids_for(component)
            if wid != worker_id and wid in app.worker_host
        ]
        if not survivors:
            # Nothing to redirect to: every worker of the component is
            # down. Record the dead end — only heartbeat/supervisor
            # recovery (and, for lost tuples, spout replay) can act.
            self.dead_ends += 1
            self.dead_end_events.append({
                "time": round(self.controller.engine.now, 6),
                "dpid": dpid,
                "worker_id": worker_id,
                "topology": topology_id,
                "component": component,
            })
            return
        self.detections += 1
        self.detection_times.append(self.controller.engine.now)
        self.redirected[worker_id] = (topology_id, component)
        updates = predecessor_routing_updates(
            record.logical, record.physical, component, survivors)
        for pred_id in sorted(updates):
            if pred_id == worker_id:
                continue
            app.update_routing(topology_id, pred_id, updates[pred_id])

    # -- recovery path -----------------------------------------------------------

    def _on_port_add(self, dpid: str, worker_id: int) -> None:
        if worker_id not in self.redirected:
            return
        if self.restore_probation > 0:
            self.controller.engine.schedule(
                self.restore_probation, self._maybe_restore, worker_id)
        else:
            self._maybe_restore(worker_id)

    def _maybe_restore(self, worker_id: int) -> None:
        app = self._core()
        if worker_id not in app.worker_host:
            return  # died again during probation
        located = self.redirected.pop(worker_id, None)
        if located is None:
            return
        topology_id, component = located
        record = self.cluster.manager.topologies.get(topology_id)
        if record is None:
            return
        alive = [wid for wid in record.physical.worker_ids_for(component)
                 if wid in app.worker_host]
        self.restores += 1
        updates = predecessor_routing_updates(
            record.logical, record.physical, component, alive)
        for pred_id in sorted(updates):
            app.update_routing(topology_id, pred_id, updates[pred_id])

    # -- helpers ------------------------------------------------------------------

    def _locate(self, worker_id: int) -> Optional[Tuple[str, str]]:
        for topology_id, record in self.cluster.manager.topologies.items():
            assignment = record.physical.assignments.get(worker_id)
            if assignment is not None:
                return topology_id, assignment.component
        return None

"""Online SDN bandwidth allocation (§5).

The scheduler treats bandwidth as a *soft* constraint; this control
plane app closes the loop at run time. For every inter-host flow that a
managed topology routes over an annotated link it installs a rate meter
on the sending switch (``MeterMod``), sizes the meters by weighted fair
share of the link (:mod:`repro.sdn.bandwidth`), then polls meter
statistics each control round and reallocates: flows that under-use
their share lend the surplus to flows the meters are clipping, and no
flow ever drops below its guaranteed share.

The app plugs into :class:`~repro.core.controller.TyphoonControllerApp`
as its ``bandwidth_policy``: when the core app computes a remote-sender
rule it asks :meth:`meter_for` and, if a meter id comes back, prefixes
the rule's actions with a :class:`~repro.sdn.flow.Meter` step. Links
without a bandwidth annotation are never metered, so a cluster with no
link capacities behaves exactly as before this app existed.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Set, Tuple

from ...net.hosts import Cluster
from ...sdn.bandwidth import SETTLE_EPSILON, fair_shares, reallocate
from ...sdn.controller import ControllerApp
from ...sdn.openflow import MeterStatsReply

#: Private meter-id range for allocator-owned meters (flow select groups
#: use 0x8000-prefixed addresses, replica groups 0x60000000 — disjoint).
METER_BASE = 0x70000000

#: (app_id, sending dpid, receiving dpid) — one meter per directed
#: inter-host flow aggregate per application.
_FlowKey = Tuple[int, str, str]
#: Directed link between two hosts.
_LinkKey = Tuple[str, str]


class _MeterFlow:
    """One metered flow aggregate and its allocation bookkeeping."""

    __slots__ = ("key", "meter_id", "weight", "guarantee", "allocation",
                 "observed", "pairs", "last_bytes", "last_sample",
                 "installed")

    def __init__(self, key: _FlowKey, meter_id: int):
        self.key = key
        self.meter_id = meter_id
        self.weight = 0.0           # aggregate demanded rate (bytes/sec)
        self.guarantee = 0.0
        self.allocation = 0.0
        self.observed = 0.0         # measured rate, last sample window
        self.pairs: Set[Tuple[int, int]] = set()
        self.last_bytes = 0
        self.last_sample: Optional[float] = None
        self.installed = False


class BandwidthAllocator(ControllerApp):
    """Meters inter-host flows and rebalances link bandwidth online."""

    name = "bandwidth-allocator"

    def __init__(self, core, cluster: Cluster, interval: float = 0.5,
                 burst_seconds: float = 0.02,
                 min_burst_bytes: float = 4096.0,
                 max_queue_seconds: float = 0.05,
                 smoothing: float = 0.4,
                 epsilon: float = 0.1):
        super().__init__()
        self.core = core
        self.cluster = cluster
        self.interval = interval
        self.burst_seconds = burst_seconds
        #: EWMA factor for observed rates. Batch framing makes per-round
        #: byte counts jitter (a window catches 3 frames or 4); raw
        #: samples would flap the meters every round. ``epsilon`` is the
        #: reprogram dead band on top — wider than SETTLE_EPSILON so
        #: residual jitter does not count as a reallocation.
        self.smoothing = smoothing
        #: Burst floor (an MTU-and-change): a meter must always admit at
        #: least one whole frame, or a small allocation drops every
        #: batch regardless of the flow's average rate.
        self.min_burst_bytes = min_burst_bytes
        self.max_queue_seconds = max_queue_seconds
        self.epsilon = epsilon
        self._meter_ids = itertools.count(1)
        self._flows: Dict[_FlowKey, _MeterFlow] = {}
        self._by_meter: Dict[Tuple[str, int], _MeterFlow] = {}
        self._links: Dict[_LinkKey, List[_FlowKey]] = {}
        # Telemetry the congestion tests and the bench read.
        self.rounds = 0
        self.reallocations = 0
        self.meters_installed = 0
        self.last_change_round = 0
        self.last_change_time = 0.0
        self.settled_rounds = 0     # consecutive no-change rounds

    def on_start(self) -> None:
        self.controller.every(self.interval, self._tick,
                              name="bandwidth-allocator")

    # -- bandwidth_policy hook (called by the core app) --------------------

    def meter_for(self, app_id: int, src_worker: int, dst_worker: int,
                  src_dpid: str, dst_dpid: str) -> Optional[int]:
        """Meter id for this worker pair's inter-host flow, or None.

        Called while the core app computes remote-sender rules. Links
        without a bandwidth annotation stay unmetered. New pairs update
        the flow's demand weight and retune the whole link's meters;
        MeterMods ride the same FIFO control channel as the FlowMods
        that follow, and an uninstalled meter fails open, so rules never
        drop traffic while the meter is in flight.
        """
        capacity = self.cluster.link_bandwidth(src_dpid, dst_dpid)
        if capacity is None or src_dpid == dst_dpid:
            return None
        key = (app_id, src_dpid, dst_dpid)
        flow = self._flows.get(key)
        if flow is None:
            flow = _MeterFlow(key, METER_BASE + next(self._meter_ids))
            self._flows[key] = flow
            self._by_meter[(src_dpid, flow.meter_id)] = flow
            self._links.setdefault((src_dpid, dst_dpid), []).append(key)
        pair = (src_worker, dst_worker)
        if pair not in flow.pairs:
            flow.pairs.add(pair)
            flow.weight += self._pair_rate(app_id, src_worker, dst_worker)
            self._retune_link((src_dpid, dst_dpid), capacity)
        return flow.meter_id

    def _pair_rate(self, app_id: int, src_worker: int,
                   dst_worker: int) -> float:
        """Demanded rate of one worker pair (max of endpoint demands)."""
        for topology_id in sorted(self.core.managed):
            physical = self.core.state.read_physical(topology_id)
            if physical is None or physical.app_id != app_id:
                continue
            logical = self.core.state.read_logical(topology_id)
            if logical is None:
                return 0.0
            rate = 0.0
            for worker_id in (src_worker, dst_worker):
                assignment = physical.assignments.get(worker_id)
                if assignment is None:
                    continue
                node = logical.nodes.get(assignment.component)
                demand = getattr(node, "demand", None)
                if demand is not None and demand.bandwidth > rate:
                    rate = demand.bandwidth
            return rate
        return 0.0

    # -- allocation ---------------------------------------------------------

    def _retune_link(self, link: _LinkKey, capacity: float) -> None:
        """Recompute guarantees for a link and program all its meters."""
        keys = sorted(self._links.get(link, []))
        if not keys:
            return
        weights = {key: self._flows[key].weight for key in keys}
        shares = fair_shares(capacity, weights)
        for key in keys:
            flow = self._flows[key]
            flow.guarantee = shares[key]
            # A retune resets the allocation to the guarantee; the
            # periodic loop grows it back from observed rates.
            flow.allocation = shares[key]
            self._program(flow)

    def _program(self, flow: _MeterFlow) -> None:
        dpid = flow.key[1]
        if dpid not in self.controller.switches:
            return
        self.controller.install_meter(
            dpid, flow.meter_id, flow.allocation,
            burst_bytes=max(flow.allocation * self.burst_seconds,
                            self.min_burst_bytes),
            max_queue_seconds=self.max_queue_seconds,
            modify=flow.installed)
        if not flow.installed:
            flow.installed = True
            self.meters_installed += 1

    def _tick(self) -> None:
        """One control round: poll meter stats, then rebalance links."""
        self.rounds += 1
        for dpid in sorted({key[1] for key in self._flows}):
            if dpid in self.controller.switches:
                self.controller.request_meter_stats(dpid)

    def on_meter_stats(self, message: MeterStatsReply) -> None:
        now = self.controller.engine.now
        touched_links: Set[_LinkKey] = set()
        for entry in message.entries:
            flow = self._by_meter.get((message.dpid, entry.meter_id))
            if flow is None:
                continue
            # Offered load = admitted + dropped. Counting only admitted
            # bytes starves a clipped flow: its meter drops everything,
            # it looks idle, and the loop lends away even more of its
            # share. Drops are demand too.
            offered = entry.bytes + entry.dropped_bytes
            if flow.last_sample is not None and now > flow.last_sample:
                sample = ((offered - flow.last_bytes)
                          / (now - flow.last_sample))
                if flow.observed == 0.0:
                    flow.observed = sample  # seed the EWMA
                else:
                    flow.observed = (self.smoothing * sample
                                     + (1.0 - self.smoothing)
                                     * flow.observed)
            flow.last_bytes = offered
            flow.last_sample = now
            touched_links.add((flow.key[1], flow.key[2]))
        for link in sorted(touched_links):
            self._rebalance(link)

    def _rebalance(self, link: _LinkKey) -> None:
        capacity = self.cluster.link_bandwidth(link[0], link[1])
        keys = sorted(self._links.get(link, []))
        if capacity is None or not keys:
            return
        flows = [self._flows[key] for key in keys]
        new = reallocate(
            allocations={f.key: f.allocation for f in flows},
            observed={f.key: f.observed for f in flows},
            guarantees={f.key: f.guarantee for f in flows},
            capacity=capacity,
        )
        changed = False
        for flow in flows:
            target = new[flow.key]
            base = max(abs(flow.allocation), 1e-9)
            if abs(target - flow.allocation) / base <= self.epsilon:
                continue
            flow.allocation = target
            self._program(flow)
            self.reallocations += 1
            changed = True
        if changed:
            self.last_change_round = self.rounds
            self.last_change_time = self.controller.engine.now
            self.settled_rounds = 0
        else:
            self.settled_rounds += 1

    # -- resilience ---------------------------------------------------------

    def on_switch_reconnect(self, dpid: str) -> None:
        """The switch lost its meters with its tables; re-program ours."""
        for key in sorted(self._flows):
            if key[1] != dpid:
                continue
            flow = self._flows[key]
            flow.installed = False
            self._program(flow)

    # -- introspection (REST / bench) ---------------------------------------

    def snapshot(self) -> dict:
        flows = []
        for key in sorted(self._flows):
            flow = self._flows[key]
            flows.append({
                "app_id": key[0],
                "src": key[1],
                "dst": key[2],
                "meter_id": flow.meter_id,
                "weight": flow.weight,
                "guarantee": flow.guarantee,
                "allocation": flow.allocation,
                "observed": flow.observed,
            })
        return {
            "rounds": self.rounds,
            "reallocations": self.reallocations,
            "meters_installed": self.meters_installed,
            "last_change_round": self.last_change_round,
            "last_change_time": self.last_change_time,
            "settled_rounds": self.settled_rounds,
            "flows": flows,
        }

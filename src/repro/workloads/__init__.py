"""Workload generators and topologies used by the evaluation."""

from .adevents import (
    AD_TYPES,
    CAMPAIGN_KEY_PREFIX,
    EVENT_FIELDS,
    EVENT_TYPES,
    AdEventGenerator,
    produce_events,
)
from .sentences import (
    CountBolt,
    FaultySplitBolt,
    InjectedFault,
    NullSinkBolt,
    SentenceSpout,
    SequenceCheckBolt,
    SequenceSpout,
    SplitBolt,
    Vocabulary,
)
from .wordcount import (
    broadcast_topology,
    forwarding_topology,
    word_count_topology,
)
from .yahoo import (
    EVENTS_TOPIC,
    WINDOW_SECONDS,
    CampaignAggregator,
    FilterBolt,
    JoinBolt,
    KafkaClientSpout,
    ParseBolt,
    ProjectionBolt,
    make_filter_factory,
    yahoo_topology,
)

__all__ = [
    "AD_TYPES",
    "CAMPAIGN_KEY_PREFIX",
    "EVENTS_TOPIC",
    "EVENT_FIELDS",
    "EVENT_TYPES",
    "WINDOW_SECONDS",
    "AdEventGenerator",
    "CampaignAggregator",
    "CountBolt",
    "FaultySplitBolt",
    "FilterBolt",
    "InjectedFault",
    "JoinBolt",
    "KafkaClientSpout",
    "NullSinkBolt",
    "ParseBolt",
    "ProjectionBolt",
    "SentenceSpout",
    "SequenceCheckBolt",
    "SequenceSpout",
    "SplitBolt",
    "Vocabulary",
    "broadcast_topology",
    "forwarding_topology",
    "make_filter_factory",
    "produce_events",
    "word_count_topology",
    "yahoo_topology",
]

"""The Yahoo advertisement-analytics pipeline (Fig. 13, §6.2).

Six computations, with Kafka as the input source and Redis as the
database for the join and aggregation workers:

    kafka-client(1) -> parse(1) -> filter(3) -> projection(3)
        -> join(3, stateful) -> aggregate-store(1, stateful)

The filter initially admits only ``view`` events; the Fig. 14 experiment
hot-swaps it for one that also admits ``click`` events, which roughly
doubles the windowed counts downstream — without restarting anything.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple

from ..ext.kafka import KafkaBroker, KafkaConsumer
from ..ext.redis import RedisClient, RedisStore
from ..streaming.topology import (
    Bolt,
    ComponentContext,
    EmitterApi,
    LogicalTopology,
    Spout,
    TopologyBuilder,
    TopologyConfig,
)
from ..streaming.tuples import StreamTuple
from ..streaming.windows import TumblingWindow, WindowedCounter
from .adevents import CAMPAIGN_KEY_PREFIX

#: The 10-second tuple window the paper's deployment uses.
WINDOW_SECONDS = 10.0

EVENTS_TOPIC = "ad-events"


class KafkaClientSpout(Spout):
    """Pulls ad events from the Kafka substrate (consumer group =
    this component's parallel workers)."""

    def __init__(self, poll_batch: int = 100):
        self.poll_batch = poll_batch
        self._consumer: Optional[KafkaConsumer] = None
        self.polled = 0

    def open(self, ctx: ComponentContext) -> None:
        broker: KafkaBroker = ctx.services["kafka"]
        self._consumer = KafkaConsumer(
            broker, EVENTS_TOPIC,
            member_index=ctx.task_index, group_size=ctx.parallelism,
        )

    def next_tuple(self, collector: EmitterApi) -> None:
        records = self._consumer.poll(self.poll_batch)
        collector.charge(self._consumer.drain_cost())
        for record in records:
            self.polled += 1
            collector.emit(record.value, message_id=(record.partition,
                                                     record.offset))


class ParseBolt(Bolt):
    """Deserializes/validates raw events into the 7-field tuple."""

    def __init__(self):
        self.malformed = 0

    def execute(self, stream_tuple: StreamTuple,
                collector: EmitterApi) -> None:
        values = stream_tuple.values
        if len(values) != 7 or not isinstance(values[4], str):
            self.malformed += 1
            return
        collector.emit(values, anchor=stream_tuple)


class FilterBolt(Bolt):
    """Admits events whose type is in the allowed set — the Fig. 14
    hot-swap target."""

    def __init__(self, allowed: Sequence[str] = ("view",)):
        self.allowed = frozenset(allowed)
        self.passed = 0
        self.dropped = 0

    def execute(self, stream_tuple: StreamTuple,
                collector: EmitterApi) -> None:
        if stream_tuple[4] in self.allowed:
            self.passed += 1
            collector.emit(stream_tuple.values, anchor=stream_tuple)
        else:
            self.dropped += 1


def make_filter_factory(allowed: Sequence[str]) -> Callable[[], FilterBolt]:
    allowed = tuple(allowed)

    def factory() -> FilterBolt:
        return FilterBolt(allowed)

    return factory


class ProjectionBolt(Bolt):
    """Projects events down to (ad_id, event_time)."""

    def execute(self, stream_tuple: StreamTuple,
                collector: EmitterApi) -> None:
        collector.emit((stream_tuple[2], stream_tuple[5]),
                       anchor=stream_tuple)


class JoinBolt(Bolt):
    """Joins ad ids to campaign ids via Redis, with a local cache
    (key-based routing upstream keeps the cache effective)."""

    def __init__(self):
        self._redis: Optional[RedisClient] = None
        self.cache: Dict[str, str] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.unjoined = 0

    def open(self, ctx: ComponentContext) -> None:
        store: RedisStore = ctx.services["redis"]
        self._redis = RedisClient(store)

    def execute(self, stream_tuple: StreamTuple,
                collector: EmitterApi) -> None:
        ad_id, event_time = stream_tuple.values
        campaign = self.cache.get(ad_id)
        if campaign is None:
            self.cache_misses += 1
            campaign = self._redis.get(CAMPAIGN_KEY_PREFIX + ad_id)
            collector.charge(self._redis.drain_cost())
            if campaign is None:
                self.unjoined += 1
                return
            self.cache[ad_id] = campaign
        else:
            self.cache_hits += 1
        collector.emit((campaign, event_time), anchor=stream_tuple)

    def on_signal(self, signal: StreamTuple, collector: EmitterApi) -> None:
        self.cache.clear()


class CampaignAggregator(Bolt):
    """Windowed per-campaign counts (10 s tumbling windows); closed
    windows are written to Redis and emitted downstream.

    Built on :class:`~repro.streaming.windows.WindowedCounter`: windows
    close as the event-time watermark advances, and a SIGNAL (stable
    update / relocation) flushes everything still open."""

    def __init__(self, window_seconds: float = WINDOW_SECONDS):
        self.window_seconds = window_seconds
        self.emitted_windows = 0
        self._redis: Optional[RedisClient] = None
        self._counter: Optional[WindowedCounter] = None
        self._collector: Optional[EmitterApi] = None

    def open(self, ctx: ComponentContext) -> None:
        store: RedisStore = ctx.services["redis"]
        self._redis = RedisClient(store)
        self._counter = WindowedCounter(
            TumblingWindow(self.window_seconds), on_close=self._on_close)

    @property
    def windows(self) -> Dict[Tuple[str, float], int]:
        """Open windows as {(campaign, window_start): count}."""
        return {(key, span.start): count
                for (key, span), count in self._counter.cells.items()}

    def _on_close(self, campaign: str, span, count: int) -> None:
        self._redis.set("window:%s:%.0f" % (campaign, span.start), count)
        self._collector.charge(self._redis.drain_cost())
        self._collector.emit((campaign, span.start, count))
        self.emitted_windows += 1

    def execute(self, stream_tuple: StreamTuple,
                collector: EmitterApi) -> None:
        campaign, event_time = stream_tuple.values
        self._collector = collector
        self._counter.add(campaign, event_time)

    def on_signal(self, signal: StreamTuple, collector: EmitterApi) -> None:
        self._collector = collector
        self._counter.flush()


def yahoo_topology(
    topology_id: str = "yahoo-ads",
    config: Optional[TopologyConfig] = None,
    allowed_events: Sequence[str] = ("view",),
    filters: int = 3,
    projections: int = 3,
    joins: int = 3,
    window_seconds: float = WINDOW_SECONDS,
) -> LogicalTopology:
    """Build the Fig. 13 pipeline. The hosting cluster must provide the
    ``kafka`` and ``redis`` services (see the Yahoo example)."""
    builder = TopologyBuilder(topology_id, config)
    builder.set_spout("kafka-client", KafkaClientSpout, 1)
    builder.set_bolt("parse", ParseBolt, 1).shuffle_grouping("kafka-client")
    builder.set_bolt("filter", make_filter_factory(allowed_events),
                     filters).shuffle_grouping("parse")
    builder.set_bolt("projection", ProjectionBolt,
                     projections).shuffle_grouping("filter")
    builder.set_bolt("join", JoinBolt, joins,
                     stateful=True).fields_grouping("projection", [0])
    builder.set_bolt("store", lambda: CampaignAggregator(window_seconds), 1,
                     stateful=True).global_grouping("join")
    return builder.build()

"""Word-count workload components (the Fig. 2 / §6.2 topology).

Sentence sources with uniform or Zipf-skewed vocabularies, a splitter, a
stateful counter with the Listing 2 cache-flush pattern, and fault
variants used by the Fig. 10/11 experiments (a split worker that starts
throwing — the paper's NullPointerException — at a chosen time).
"""

from __future__ import annotations

import bisect
from typing import Callable, List, Optional

from ..streaming.topology import Bolt, ComponentContext, EmitterApi, Spout
from ..streaming.tuples import StreamTuple


class InjectedFault(RuntimeError):
    """Stand-in for the NullPointerException injected in §6.2."""


class Vocabulary:
    """A word list with uniform or Zipf(s) sampling."""

    def __init__(self, size: int = 1000, skew: float = 0.0):
        if size < 1:
            raise ValueError("vocabulary must have at least one word")
        if skew < 0:
            raise ValueError("skew must be >= 0")
        self.words = ["word%04d" % i for i in range(size)]
        self.skew = skew
        if skew > 0:
            weights = [1.0 / (rank ** skew) for rank in range(1, size + 1)]
            total = sum(weights)
            cumulative = []
            running = 0.0
            for weight in weights:
                running += weight / total
                cumulative.append(running)
            self._cumulative: Optional[List[float]] = cumulative
        else:
            self._cumulative = None

    def sample(self, rng) -> str:
        if self._cumulative is None:
            return self.words[rng.randrange(len(self.words))]
        index = bisect.bisect_left(self._cumulative, rng.random())
        return self.words[min(index, len(self.words) - 1)]

    def sentence(self, rng, length: int) -> str:
        return " ".join(self.sample(rng) for _ in range(length))


class SentenceSpout(Spout):
    """Emits sentences at the executor's configured rate (or max speed)."""

    def __init__(self, vocabulary: Optional[Vocabulary] = None,
                 words_per_sentence: int = 5, with_ids: bool = False):
        self.vocabulary = vocabulary or Vocabulary()
        self.words_per_sentence = words_per_sentence
        self.with_ids = with_ids
        self.seq = 0
        self._rng = None

    def open(self, ctx: ComponentContext) -> None:
        self._rng = ctx.rng

    def next_tuple(self, collector: EmitterApi) -> None:
        sentence = self.vocabulary.sentence(self._rng, self.words_per_sentence)
        if self.with_ids:
            collector.emit((sentence, self.seq), message_id=self.seq)
        else:
            collector.emit((sentence,), message_id=self.seq)
        self.seq += 1


class SplitBolt(Bolt):
    """Splits sentences into (word, 1) pairs.

    ``work_cost`` models the per-sentence computation (virtual seconds);
    the overload experiments raise it to make splitters the bottleneck.
    """

    def __init__(self, work_cost: float = 0.0):
        self.work_cost = work_cost

    def execute(self, stream_tuple: StreamTuple,
                collector: EmitterApi) -> None:
        if self.work_cost:
            collector.charge(self.work_cost)
        for word in stream_tuple[0].split():
            collector.emit((word, 1), anchor=stream_tuple)


class FaultySplitBolt(SplitBolt):
    """A splitter that starts crashing at ``fault_time`` when its task
    index matches — the Fig. 10 fault injection. The fault is in the
    *logic* (factory), so restarts and reschedules stay faulty."""

    def __init__(self, fault_time: float, faulty_task_index: int = 0,
                 work_cost: float = 0.0):
        super().__init__(work_cost)
        self.fault_time = fault_time
        self.faulty_task_index = faulty_task_index
        self._armed = False
        self._now: Callable[[], float] = lambda: 0.0

    def open(self, ctx: ComponentContext) -> None:
        self._armed = ctx.task_index == self.faulty_task_index
        self._now = ctx.services.get("now", lambda: 0.0)

    def execute(self, stream_tuple: StreamTuple,
                collector: EmitterApi) -> None:
        if self._armed and self._now() >= self.fault_time:
            raise InjectedFault("split worker %d faulted"
                                % self.faulty_task_index)
        super().execute(stream_tuple, collector)


class CountBolt(Bolt):
    """Stateful word counter (Listing 2): in-memory cache, key-based
    routing upstream, flush-and-emit on signal tuples."""

    def __init__(self, emit_counts_on_signal: bool = True):
        self.counts = {}
        self.emit_counts_on_signal = emit_counts_on_signal
        self.flushes = 0

    def execute(self, stream_tuple: StreamTuple,
                collector: EmitterApi) -> None:
        word = stream_tuple[0]
        self.counts[word] = self.counts.get(word, 0) + stream_tuple[1]

    def on_signal(self, signal: StreamTuple, collector: EmitterApi) -> None:
        self.flushes += 1
        if self.emit_counts_on_signal:
            for word in sorted(self.counts):
                collector.emit((word, self.counts[word]))
        self.counts.clear()


class NullSinkBolt(Bolt):
    """Accepts and counts tuples; the generic sink for microbenchmarks."""

    def __init__(self):
        self.count = 0
        self.last_values = None

    def execute(self, stream_tuple: StreamTuple,
                collector: EmitterApi) -> None:
        self.count += 1
        self.last_values = stream_tuple.values

    def execute_batch(self, stream_tuples, collector: EmitterApi) -> None:
        """Batch hook (see :attr:`Bolt.execute_batch`): equivalent to
        ``execute`` once per tuple."""
        self.count += len(stream_tuples)
        if stream_tuples:
            self.last_values = stream_tuples[-1].values


class SequenceSpout(Spout):
    """Max-speed source of (payload, sequence) tuples — the §6.1
    forwarding microbenchmark's string-tuple source."""

    def __init__(self, payload: str = "typhoon-forwarding-benchmark",
                 limit: Optional[int] = None):
        self.payload = payload
        self.limit = limit
        self.seq = 0

    def next_tuple(self, collector: EmitterApi) -> None:
        if self.limit is not None and self.seq >= self.limit:
            return
        collector.emit((self.payload, self.seq), message_id=self.seq)
        self.seq += 1

    def next_tuple_batch(self, collector: EmitterApi, want: int) -> None:
        """Batch hook (see :attr:`Spout.next_tuple_batch`): up to
        ``want`` emissions in one call — same tuples, same order, same
        limit handling as ``next_tuple``. Message ids are dropped:
        they only matter under guaranteed processing, and the executor
        never engages this hook while acking is on."""
        seq = self.seq
        stop = seq + want
        limit = self.limit
        if limit is not None and limit < stop:
            stop = limit
        if seq < stop:
            payload = self.payload
            collector.emit_many([(payload, s) for s in range(seq, stop)])
            self.seq = stop


class SequenceCheckBolt(Bolt):
    """Verifies per-source monotonic sequence numbers (§6.1 sink)."""

    def __init__(self):
        self.count = 0
        self.out_of_order = 0
        self._last = {}

    def execute(self, stream_tuple: StreamTuple,
                collector: EmitterApi) -> None:
        self.count += 1
        src = stream_tuple.source_worker
        seq = stream_tuple.values[1]
        last = self._last.get(src)
        if last is not None and seq <= last:
            self.out_of_order += 1
        self._last[src] = seq

    def execute_batch(self, stream_tuples, collector: EmitterApi) -> None:
        """Batch hook (see :attr:`Bolt.execute_batch`): the per-tuple
        monotonicity checks of ``execute``, with counters and lookups
        hoisted to locals."""
        out_of_order = self.out_of_order
        last_map = self._last
        get = last_map.get
        for stream_tuple in stream_tuples:
            src = stream_tuple.source_worker
            seq = stream_tuple.values[1]
            last = get(src)
            if last is not None and seq <= last:
                out_of_order += 1
            last_map[src] = seq
        self.count += len(stream_tuples)
        self.out_of_order = out_of_order

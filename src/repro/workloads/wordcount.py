"""Word-count topology builders (Fig. 2, used throughout §6.2).

The canonical pipeline: sentence source -> split (shuffle) -> count
(key-based), with optional fault injection on one split worker and a
configurable split work cost for the overload / auto-scaling scenarios.
"""

from __future__ import annotations

from typing import Optional

from ..streaming.topology import (
    LogicalTopology,
    TopologyBuilder,
    TopologyConfig,
)
from .sentences import (
    CountBolt,
    FaultySplitBolt,
    NullSinkBolt,
    SentenceSpout,
    SequenceCheckBolt,
    SequenceSpout,
    SplitBolt,
    Vocabulary,
)


def forwarding_topology(topology_id: str = "forward",
                        config: Optional[TopologyConfig] = None,
                        payload: str = "typhoon-forwarding-benchmark",
                        ) -> LogicalTopology:
    """§6.1 microbenchmark: one source, one sequence-checking sink."""
    builder = TopologyBuilder(topology_id, config)
    builder.set_spout("source", lambda: SequenceSpout(payload), 1,
                      max_pending=2000)
    builder.set_bolt("sink", SequenceCheckBolt, 1).shuffle_grouping("source")
    return builder.build()


def broadcast_topology(topology_id: str = "broadcast", sinks: int = 2,
                       config: Optional[TopologyConfig] = None,
                       payload: str = "typhoon-broadcast-benchmark",
                       ) -> LogicalTopology:
    """§6.1 one-to-many: a source broadcasting to ``sinks`` workers."""
    if sinks < 1:
        raise ValueError("need at least one sink")
    builder = TopologyBuilder(topology_id, config)
    builder.set_spout("source", lambda: SequenceSpout(payload), 1)
    builder.set_bolt("sink", NullSinkBolt, sinks).all_grouping("source")
    return builder.build()


def word_count_topology(
    topology_id: str = "wordcount",
    config: Optional[TopologyConfig] = None,
    splits: int = 2,
    counts: int = 4,
    vocabulary_size: int = 1000,
    skew: float = 0.0,
    words_per_sentence: int = 5,
    split_work_cost: float = 0.0,
    fault_time: Optional[float] = None,
    faulty_task_index: int = 0,
) -> LogicalTopology:
    """The Fig. 2 word-count pipeline, §6.2's evaluation workload.

    With ``fault_time`` set, the split worker with ``faulty_task_index``
    starts throwing at that (virtual) time — the Fig. 10 scenario.
    """
    vocabulary = Vocabulary(vocabulary_size, skew)

    def spout_factory():
        return SentenceSpout(vocabulary, words_per_sentence)

    if fault_time is not None:
        def split_factory():
            return FaultySplitBolt(fault_time, faulty_task_index,
                                   split_work_cost)
    else:
        def split_factory():
            return SplitBolt(split_work_cost)

    builder = TopologyBuilder(topology_id, config)
    builder.set_spout("source", spout_factory, 1)
    builder.set_bolt("split", split_factory, splits).shuffle_grouping("source")
    builder.set_bolt("count", CountBolt, counts,
                     stateful=True).fields_grouping("split", [0])
    return builder.build()

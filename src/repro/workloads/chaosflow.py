"""Chaos-harness workload: a pipeline instrumented for exactness checks.

The random fault scenarios (:mod:`repro.sim.faults`) need a topology
whose *correctness* — not just throughput — is checkable after arbitrary
worker restarts and reconfigurations. This module provides one:

    source (seq spout) -> relay (shuffle) -> state (key-based, stateful)

with a :class:`DedupRegistry` standing in for the external storage §8
prescribes for stateful workers. The registry lives in
``cluster.services`` so it survives worker crashes and relaunches:

* sources draw their sequence numbers *from the registry*, so a
  restarted spout continues the stream instead of re-emitting old
  sequence numbers (the model of a source reading from a durable queue
  offset — re-emission would be indistinguishable from duplication);
* the stateful sink records every ``(source, seq)`` it applies, so any
  tuple applied twice — e.g. re-delivered across a reconfiguration —
  shows up as a duplicate, which invariant (c) of the chaos harness
  asserts is zero.

Two delivery regimes, chosen by the registry's ``at_least_once`` flag:

* **best-effort** (acking off, the default): nothing is ever replayed,
  so a duplicate recorded by the sink is always a real
  routing/delivery bug — invariant (c) asserts zero.
* **at-least-once** (acking + framework replay enabled): re-delivery is
  *expected*; the sink applies idempotently via ``record_once``, so
  replays count as ``redelivered`` while ``duplicates`` still means
  "state applied twice" and must still be zero. Permanent loss is then
  checked separately by the replay-conservation invariant.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..streaming.topology import (
    Bolt,
    ComponentContext,
    EmitterApi,
    LogicalTopology,
    Spout,
    TopologyBuilder,
    TopologyConfig,
)
from ..streaming.tuples import StreamTuple

#: The cluster-services key the chaos components look the registry up by.
DEDUP_SERVICE = "chaos_dedup"


class DedupRegistry:
    """External-storage stand-in: durable sequence counters + seen-set.

    Shared by every chaos-workload component via ``cluster.services``;
    deliberately not billed as a costed service (it models state that
    survives crashes, not a remote round trip per tuple).
    """

    def __init__(self, at_least_once: bool = False) -> None:
        self._sequences: Dict[str, int] = {}
        self._seen: Dict[Tuple[str, int], int] = {}
        self.at_least_once = at_least_once
        self.tracked = 0
        self.duplicates = 0
        self.redelivered = 0

    def next_seq(self, source: str) -> int:
        """Durably allocate the next sequence number for one source."""
        value = self._sequences.get(source, 0)
        self._sequences[source] = value + 1
        return value

    def record(self, source: str, seq: int) -> None:
        """Note one stateful application of ``(source, seq)``."""
        key = (source, seq)
        count = self._seen.get(key, 0)
        self._seen[key] = count + 1
        self.tracked += 1
        if count:
            self.duplicates += 1

    def record_once(self, source: str, seq: int) -> bool:
        """Idempotent application for the at-least-once regime: apply
        state only on first sight; replays are counted but harmless.
        Returns True when the key was applied (first delivery)."""
        key = (source, seq)
        if key in self._seen:
            self.redelivered += 1
            return False
        self._seen[key] = 1
        self.tracked += 1
        return True

    def duplicate_keys(self) -> List[Tuple[str, int]]:
        return sorted(key for key, count in self._seen.items() if count > 1)

    def allocated(self) -> Dict[str, int]:
        """Sequence numbers handed out so far, per source."""
        return dict(self._sequences)

    def missing_keys(self) -> List[Tuple[str, int]]:
        """Allocated ``(source, seq)`` pairs never applied by the sink.

        On a quiesced at-least-once run this minus the spout replay
        buffers' still-pending messages is the permanent-loss set."""
        out = []
        for source, next_seq in sorted(self._sequences.items()):
            for seq in range(next_seq):
                if (source, seq) not in self._seen:
                    out.append((source, seq))
        return out


class ChaosSequenceSpout(Spout):
    """Emits ``(payload, seq, source_key)`` with registry-backed seqs."""

    def __init__(self, payload: str = "chaos-harness-payload"):
        self.payload = payload
        self._registry: Optional[DedupRegistry] = None
        self._key = "source:?"
        self._local_seq = 0

    def open(self, ctx: ComponentContext) -> None:
        self._registry = ctx.services.get(DEDUP_SERVICE)
        self._key = "source:%d" % ctx.task_index

    def next_tuple(self, collector: EmitterApi) -> None:
        if self._registry is not None:
            seq = self._registry.next_seq(self._key)
        else:
            seq = self._local_seq
            self._local_seq += 1
        collector.emit((self.payload, seq, self._key), message_id=seq)


class RelayBolt(Bolt):
    """Stateless pass-through (gives the pipeline a routed middle hop)."""

    def execute(self, stream_tuple: StreamTuple,
                collector: EmitterApi) -> None:
        collector.emit(tuple(stream_tuple.values), anchor=stream_tuple)


class DedupSinkBolt(Bolt):
    """Stateful sink: applies each tuple to the dedup registry."""

    def __init__(self) -> None:
        self.processed = 0
        self._registry: Optional[DedupRegistry] = None

    def open(self, ctx: ComponentContext) -> None:
        self._registry = ctx.services.get(DEDUP_SERVICE)

    def snapshot(self):
        # The per-worker counter is the bolt's only local state (the
        # seen-set is already durable in the registry); checkpointing it
        # lets a relaunched worker resume instead of restarting at 0.
        return {"processed": self.processed}

    def restore(self, state) -> None:
        self.processed = state["processed"]

    def execute(self, stream_tuple: StreamTuple,
                collector: EmitterApi) -> None:
        self.processed += 1
        if self._registry is None:
            return
        if self._registry.at_least_once:
            self._registry.record_once(stream_tuple[2], stream_tuple[1])
        else:
            self._registry.record(stream_tuple[2], stream_tuple[1])


def chaos_topology(topology_id: str = "chaos",
                   config: Optional[TopologyConfig] = None,
                   sources: int = 1, relays: int = 2,
                   sinks: int = 2) -> LogicalTopology:
    """The chaos-harness pipeline: source -> relay -> stateful sink.

    The sink is key-grouped on the sequence number, spreading load over
    all sink workers while satisfying the Table 4 stateful-routing rule.
    """
    builder = TopologyBuilder(topology_id, config)
    builder.set_spout("source", ChaosSequenceSpout, sources)
    builder.set_bolt("relay", RelayBolt, relays).shuffle_grouping("source")
    builder.set_bolt("state", DedupSinkBolt, sinks,
                     stateful=True).fields_grouping("relay", [1])
    return builder.build()

"""Advertisement event workload (the Yahoo streaming benchmark's input).

Events mirror the benchmark's schema: user id, page id, ad id, ad type,
event type (view / click / purchase, uniformly distributed), event time
and source IP. Ads map onto campaigns; the mapping is seeded into the
Redis substrate so the join stage can resolve it.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..ext.kafka import KafkaBroker, KafkaProducer
from ..ext.redis import RedisStore
from ..sim.engine import Engine, Interrupt, Process

AD_TYPES = ("banner", "modal", "sponsored-search", "mail", "mobile")
EVENT_TYPES = ("view", "click", "purchase")

#: Tuple layout of one ad event flowing through the pipeline.
EVENT_FIELDS = ("user_id", "page_id", "ad_id", "ad_type", "event_type",
                "event_time", "ip")

CAMPAIGN_KEY_PREFIX = "ad-campaign:"


class AdEventGenerator:
    """Seeded generator of ad events over a fixed campaign universe."""

    def __init__(self, rng, num_campaigns: int = 100,
                 ads_per_campaign: int = 10, num_users: int = 1000,
                 num_pages: int = 100):
        self.rng = rng
        self.campaigns = ["campaign-%04d" % i for i in range(num_campaigns)]
        self.ads: List[str] = []
        self.ad_to_campaign = {}
        for campaign_index, campaign in enumerate(self.campaigns):
            for ad_index in range(ads_per_campaign):
                ad_id = "ad-%04d-%02d" % (campaign_index, ad_index)
                self.ads.append(ad_id)
                self.ad_to_campaign[ad_id] = campaign
        self.num_users = num_users
        self.num_pages = num_pages

    def seed_redis(self, store: RedisStore) -> None:
        """Install the ad -> campaign mapping (what the benchmark keeps
        in Redis for the join stage)."""
        for ad_id, campaign in self.ad_to_campaign.items():
            store.set(CAMPAIGN_KEY_PREFIX + ad_id, campaign)

    def make_event(self, now: float) -> Tuple:
        rng = self.rng
        return (
            "user-%04d" % rng.randrange(self.num_users),
            "page-%03d" % rng.randrange(self.num_pages),
            self.ads[rng.randrange(len(self.ads))],
            AD_TYPES[rng.randrange(len(AD_TYPES))],
            EVENT_TYPES[rng.randrange(len(EVENT_TYPES))],
            now,
            "10.0.%d.%d" % (rng.randrange(256), rng.randrange(256)),
        )


def produce_events(engine: Engine, broker: KafkaBroker, topic: str,
                   generator: AdEventGenerator, rate: float,
                   batch: int = 50,
                   until: Optional[float] = None) -> Process:
    """Run a producer process pushing ``rate`` events/second into Kafka."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    producer = KafkaProducer(broker)

    def loop():
        interval = batch / rate
        while until is None or engine.now < until:
            for _ in range(batch):
                event = generator.make_event(engine.now)
                producer.send(topic, event, key=event[2])
            try:
                yield interval
            except Interrupt:
                return

    return engine.process(loop(), name="ad-producer:%s" % topic)

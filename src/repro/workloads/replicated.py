"""Exactly-once chaos workload: a replicated stateful stage + tx sink.

Extends the chaos-harness pipeline (:mod:`repro.workloads.chaosflow`)
with the two roles active replication adds:

    source (seq spout) -> relay (shuffle) -> rstate (replicas=N)
                                                -> txsink (transactional)

* ``rstate`` is a deterministic stateful bolt deployed with
  ``replicas=N``: every copy consumes the same sequenced input stream
  (switch-level broadcast) and produces byte-identical outputs, so
  replica divergence is detectable and failover is seamless.
* ``txsink`` is the paper-§8 external-storage stand-in on the *output*
  side: it applies a state change iff the replica group's idempotent
  :meth:`~repro.streaming.replication.ReplicaGroup.commit` accepts the
  output sequence — re-deliveries, leader re-emissions and failover
  overlap commit exactly once. Each committed tuple is also recorded in
  the chaos :class:`~repro.workloads.chaosflow.DedupRegistry` (strict
  mode), so the chaos invariants see any double-apply as a duplicate
  and any never-committed spout sequence as a loss.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..streaming.replication import REPLICATION_SERVICE
from ..streaming.topology import (
    Bolt,
    ComponentContext,
    EmitterApi,
    LogicalTopology,
    TopologyBuilder,
    TopologyConfig,
)
from ..streaming.tuples import StreamTuple
from .chaosflow import DEDUP_SERVICE, ChaosSequenceSpout, RelayBolt


class ReplicatedCountBolt(Bolt):
    """Deterministic replicated stage: a running count per source key.

    One output per input — ``(source_key, seq, running_count)`` — whose
    values depend only on the sequenced input prefix, so every replica
    logs identical outputs (the group's divergence counter stays 0).
    """

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}

    def snapshot(self):
        return {"counts": dict(self.counts)}

    def restore(self, state) -> None:
        self.counts = dict(state["counts"])

    def execute(self, stream_tuple: StreamTuple,
                collector: EmitterApi) -> None:
        source_key = stream_tuple[2]
        count = self.counts.get(source_key, 0) + 1
        self.counts[source_key] = count
        collector.emit((source_key, stream_tuple[1], count))


class TransactionalSinkBolt(Bolt):
    """Applies replica-group outputs under idempotent commits."""

    def __init__(self) -> None:
        self.applied = 0
        self.rejected = 0
        self._group = None
        self._registry = None

    def open(self, ctx: ComponentContext) -> None:
        service = ctx.services.get(REPLICATION_SERVICE)
        if service is not None:
            self._group = service.dedup_of(ctx.topology_id, ctx.component)
        self._registry = ctx.services.get(DEDUP_SERVICE)

    def execute(self, stream_tuple: StreamTuple,
                collector: EmitterApi) -> None:
        if self._group is not None and stream_tuple.seq is not None:
            # Transactional contract: state changes iff the commit is
            # accepted. A refused commit is a collapsed duplicate (or a
            # conflict, which the replication invariant flags).
            if not self._group.commit(stream_tuple.seq[1],
                                      stream_tuple.values):
                self.rejected += 1
                return
        self.applied += 1
        if self._registry is not None:
            # Strict record: any double-apply shows up as a duplicate
            # in the no-duplicates invariant.
            self._registry.record(stream_tuple[0], stream_tuple[1])


def replicated_topology(topology_id: str = "replicated",
                        config: Optional[TopologyConfig] = None,
                        relays: int = 2,
                        replicas: int = 3) -> LogicalTopology:
    """source -> relay -> rstate (replicated) -> txsink (transactional).

    The relay -> rstate grouping declared here is notional: deployment
    rewrites every replicated node's input edges to ALL grouping (one
    sequenced broadcast stream). rstate -> txsink is GLOBAL — key-
    determined routing, required so leader re-emissions reach the same
    consumer as the original sends.
    """
    builder = TopologyBuilder(topology_id, config)
    builder.set_spout("source", ChaosSequenceSpout, 1)
    builder.set_bolt("relay", RelayBolt, relays).shuffle_grouping("source")
    builder.set_bolt("rstate", ReplicatedCountBolt, stateful=True,
                     replicas=replicas).global_grouping("relay")
    builder.set_bolt("txsink", TransactionalSinkBolt, 1) \
        .global_grouping("rstate")
    return builder.build()

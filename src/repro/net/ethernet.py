"""Byte-accurate Ethernet framing for Typhoon transport packets (Fig. 5).

Frames are real byte strings packed with :mod:`struct`; the switch,
tunnels and worker I/O layers all operate on these bytes, so multiplexing,
segmentation and broadcast replication are exercised end-to-end rather
than hand-waved.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional

from .addresses import TYPHOON_ETHERTYPE, WorkerAddress

HEADER_LEN = 14  # dst(6) + src(6) + ethertype(2)

#: Maximum payload carried by one frame. Typhoon runs over host-local
#: software switches and TCP tunnels, so jumbo frames are usable; the
#: prototype's DPDK OVS is configured likewise.
DEFAULT_MTU = 8950

_TYPE_STRUCT = struct.Struct("!H")


class FrameError(ValueError):
    """Raised for malformed frames."""


@dataclass(frozen=True)
class EthernetFrame:
    """An Ethernet II frame with worker-ID addressing."""

    dst: WorkerAddress
    src: WorkerAddress
    ethertype: int
    payload: bytes
    #: Same-process delivery annotation: the (StreamTuple, encoded_len)
    #: pairs multiplexed into ``payload``, attached by the sending I/O
    #: layer when every tuple is reconstructible without decoding (all
    #: scalar values). Purely an in-memory shortcut — the payload bytes
    #: stay authoritative, ``pack()`` ignores it, ``unpack()`` never
    #: restores it (so frames crossing a host tunnel decode for real),
    #: and it is excluded from equality/repr.
    tuples: Optional[tuple] = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if not 0 <= self.ethertype <= 0xFFFF:
            raise FrameError("ethertype out of range: %r" % (self.ethertype,))

    def __len__(self) -> int:
        return HEADER_LEN + len(self.payload)

    @property
    def is_typhoon(self) -> bool:
        return self.ethertype == TYPHOON_ETHERTYPE

    def pack(self) -> bytes:
        return (
            self.dst.pack()
            + self.src.pack()
            + _TYPE_STRUCT.pack(self.ethertype)
            + self.payload
        )

    @classmethod
    def unpack(cls, data: bytes) -> "EthernetFrame":
        if len(data) < HEADER_LEN:
            raise FrameError("frame too short: %d bytes" % len(data))
        dst = WorkerAddress.unpack(data[0:6])
        src = WorkerAddress.unpack(data[6:12])
        (ethertype,) = _TYPE_STRUCT.unpack(data[12:14])
        return cls(dst=dst, src=src, ethertype=ethertype, payload=data[14:])

    def with_dst(self, dst: WorkerAddress) -> "EthernetFrame":
        """Copy of this frame with a rewritten destination address.

        Used by the SDN load balancer's select-group action, which rewrites
        the destination worker ID in a weighted round-robin fashion (§4).
        """
        return EthernetFrame(dst=dst, src=self.src, ethertype=self.ethertype,
                             payload=self.payload, tuples=self.tuples)

"""TCP-like reliable channels.

Two uses in this system, matching the paper:

* the **Storm baseline** keeps one application-level TCP connection per
  worker pair (the per-destination serialization + send cost on these
  connections is what Typhoon eliminates for broadcast);
* **Typhoon** keeps a fixed mesh of *host-level* TCP tunnels between
  compute hosts; tunnels reliably carry custom Ethernet frames across the
  physical network and hide the custom EtherType from it (§3.3.1).

The channel is reliable and strictly FIFO: message ``i`` is always
delivered before message ``i+1`` even when size-dependent transmission
delays would reorder them.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..sim.audit import (
    LAYER_CHANNEL,
    R_CHANNEL_CLOSED,
    R_LINK_LOSS,
    DeliveryLedger,
)
from ..sim.costs import CostModel, transmission_delay
from ..sim.engine import Engine
from ..sim.trace import Tracer


class ChannelClosed(RuntimeError):
    """Raised when sending on a closed channel."""


class TcpChannel:
    """A unidirectional reliable, ordered message channel.

    ``send(data)`` schedules ``on_receive(data)`` on the destination after
    propagation + transmission delay. CPU costs (syscalls, copies) are the
    caller's responsibility — they differ between Storm and Typhoon and are
    charged in the respective transport layers.
    """

    def __init__(
        self,
        engine: Engine,
        costs: CostModel,
        on_receive: Callable[[bytes], None],
        remote: bool,
        name: str = "",
        extra_delay: float = 0.0,
        ledger: Optional[DeliveryLedger] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.engine = engine
        self.costs = costs
        self.on_receive = on_receive
        self.remote = remote
        self.name = name
        self.extra_delay = extra_delay
        self.ledger = ledger
        self.tracer = tracer
        self.closed = False
        self.messages_sent = 0
        self.bytes_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self._last_delivery = 0.0
        #: Opt-in link-serialization model: each message occupies the
        #: link for its transmission time, so a channel offered more
        #: than ``lan_bandwidth_bytes_per_sec`` builds a real queue
        #: (congestion benchmarks flip this on). Off by default — the
        #: historic model charges only per-message delay, and existing
        #: scenario timings depend on it byte-for-byte.
        self.serialize = False
        self._busy_until = 0.0
        # Chaos-injection knobs (see repro.sim.faults). ``down`` models a
        # partition: TCP keeps retransmitting, so writes queue losslessly
        # until the link heals. ``loss_rate`` models an *application-level*
        # lossy link (e.g. a saturated middlebox dropping whole writes);
        # ``chaos_delay`` adds latency on top of the base transmission cost.
        self.down = False
        self.loss_rate = 0.0
        self.loss_rng = None
        self.chaos_delay = 0.0
        self._backlog: List[bytes] = []

    def send(self, data: bytes) -> None:
        if self.closed:
            raise ChannelClosed("channel %s is closed" % self.name)
        self.messages_sent += 1
        self.bytes_sent += len(data)
        if self.down:
            self._backlog.append(data)
            return
        if (self.loss_rate > 0.0 and self.loss_rng is not None
                and self.loss_rng.random() < self.loss_rate):
            self.messages_dropped += 1
            if self.ledger is not None:
                self.ledger.record_frame_drop(LAYER_CHANNEL, R_LINK_LOSS,
                                              data)
            if self.tracer is not None:
                self.tracer.frame_drop(data, LAYER_CHANNEL, R_LINK_LOSS)
            return
        self._schedule_delivery(data)

    def _schedule_delivery(self, data: bytes) -> None:
        if self.serialize and self.remote:
            # The link is a shared serial resource: this message starts
            # transmitting when the previous one finishes.
            start = max(self.engine.now, self._busy_until)
            self._busy_until = (
                start + len(data) / self.costs.lan_bandwidth_bytes_per_sec)
            deliver_at = (self._busy_until + self.costs.lan_latency
                          + self.extra_delay + self.chaos_delay)
        else:
            delay = (transmission_delay(self.costs, len(data), self.remote)
                     + self.extra_delay + self.chaos_delay)
            deliver_at = self.engine.now + delay
        deliver_at = max(deliver_at, self._last_delivery)
        self._last_delivery = deliver_at
        self.engine.schedule(deliver_at - self.engine.now, self._deliver, data)

    def set_down(self, down: bool) -> None:
        """Partition / heal the link. Healing replays the backlog in send
        order; FIFO with pre-partition traffic is preserved by the
        monotonic ``_last_delivery`` watermark."""
        self.down = bool(down)
        if not self.down and self._backlog:
            backlog, self._backlog = self._backlog, []
            for data in backlog:
                self._schedule_delivery(data)

    def _deliver(self, data: bytes) -> None:
        if self.closed:
            # In-flight data on a torn-down connection: account it so
            # the tuples it carried don't silently vanish.
            self.messages_dropped += 1
            if self.ledger is not None:
                self.ledger.record_frame_drop(LAYER_CHANNEL,
                                              R_CHANNEL_CLOSED, data)
            if self.tracer is not None:
                self.tracer.frame_drop(data, LAYER_CHANNEL, R_CHANNEL_CLOSED)
            return
        self.messages_delivered += 1
        self.on_receive(data)

    def close(self) -> None:
        """Close the channel; in-flight and future messages are dropped
        (and counted in ``messages_dropped`` as they land)."""
        self.closed = True
        backlog, self._backlog = self._backlog, []
        for data in backlog:
            self.messages_dropped += 1
            if self.ledger is not None:
                self.ledger.record_frame_drop(LAYER_CHANNEL,
                                              R_CHANNEL_CLOSED, data)
            if self.tracer is not None:
                self.tracer.frame_drop(data, LAYER_CHANNEL, R_CHANNEL_CLOSED)


class TcpTunnel:
    """A bidirectional host-level tunnel: a pair of TCP channels.

    Typhoon designates one switch port per peer host as the *tunnelling
    port*; frames output there are carried to the peer host's switch.
    """

    def __init__(
        self,
        engine: Engine,
        costs: CostModel,
        host_a: str,
        host_b: str,
        deliver_to_a: Callable[[bytes], None],
        deliver_to_b: Callable[[bytes], None],
        ledger: Optional[DeliveryLedger] = None,
        tracer: Optional[Tracer] = None,
    ):
        if host_a == host_b:
            raise ValueError("tunnel endpoints must differ")
        self.host_a = host_a
        self.host_b = host_b
        self._a_to_b = TcpChannel(
            engine, costs, deliver_to_b, remote=True,
            name="tunnel:%s->%s" % (host_a, host_b),
            ledger=ledger, tracer=tracer,
        )
        self._b_to_a = TcpChannel(
            engine, costs, deliver_to_a, remote=True,
            name="tunnel:%s->%s" % (host_b, host_a),
            ledger=ledger, tracer=tracer,
        )

    def send_from(self, host: str, data: bytes) -> None:
        if host == self.host_a:
            self._a_to_b.send(data)
        elif host == self.host_b:
            self._b_to_a.send(data)
        else:
            raise ValueError("host %r is not an endpoint of this tunnel" % host)

    def channel_from(self, host: str) -> TcpChannel:
        if host == self.host_a:
            return self._a_to_b
        if host == self.host_b:
            return self._b_to_a
        raise ValueError("host %r is not an endpoint of this tunnel" % host)

    @property
    def total_bytes(self) -> int:
        return self._a_to_b.bytes_sent + self._b_to_a.bytes_sent

    # -- chaos knobs (both directions at once) -----------------------------

    def set_down(self, down: bool) -> None:
        """Partition or heal the host pair (lossless, TCP semantics)."""
        self._a_to_b.set_down(down)
        self._b_to_a.set_down(down)

    def set_loss(self, rate: float, rng) -> None:
        """Make the link drop whole writes with probability ``rate``."""
        for channel in (self._a_to_b, self._b_to_a):
            channel.loss_rate = rate
            channel.loss_rng = rng if rate > 0.0 else None

    def set_chaos_delay(self, extra: float) -> None:
        """Add (or with 0.0, remove) extra one-way latency."""
        self._a_to_b.chaos_delay = extra
        self._b_to_a.chaos_delay = extra

    def close(self) -> None:
        self._a_to_b.close()
        self._b_to_a.close()

"""Network substrate: addressing, Ethernet framing, hosts, TCP channels."""

from .addresses import (
    BROADCAST,
    CONTROLLER_ADDRESS,
    MIRROR_ETHERTYPE,
    TYPHOON_ETHERTYPE,
    WorkerAddress,
)
from .ethernet import DEFAULT_MTU, HEADER_LEN, EthernetFrame, FrameError
from .hosts import Cluster, Host, HostCapacity
from .tcp import ChannelClosed, TcpChannel, TcpTunnel

__all__ = [
    "BROADCAST",
    "CONTROLLER_ADDRESS",
    "DEFAULT_MTU",
    "HEADER_LEN",
    "MIRROR_ETHERTYPE",
    "TYPHOON_ETHERTYPE",
    "ChannelClosed",
    "Cluster",
    "EthernetFrame",
    "FrameError",
    "Host",
    "HostCapacity",
    "TcpChannel",
    "TcpTunnel",
    "WorkerAddress",
]

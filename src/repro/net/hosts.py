"""Compute hosts and the cluster they form.

A :class:`Host` is a named machine in the compute cluster. The simulation
does not model per-core scheduling — worker compute costs are charged on
the virtual clock directly — but hosts determine *locality*: whether a
tuple transfer is loopback or must cross the LAN (and, for Typhoon,
traverse a host-level TCP tunnel).

For resource-aware scheduling (R-Storm style), hosts optionally carry a
:class:`HostCapacity` vector and the cluster an inter-host link-bandwidth
map. Both are annotations consumed only by the resource-aware scheduler
and the bandwidth-allocation controller app; the default (no capacity,
no link entries) leaves every existing code path untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class HostCapacity:
    """Schedulable resources of one host.

    ``cpu`` is in abstract compute units (R-Storm uses percentage
    points of a core), ``memory`` in megabytes, ``bandwidth`` in
    bytes/second of NIC egress. Demands (see
    :class:`~repro.streaming.topology.ResourceDemand`) subtract from
    these; cpu/memory are hard constraints, bandwidth a soft one.
    """

    cpu: float = 100.0
    memory: float = 4096.0
    bandwidth: float = 10e9 / 8

    def __post_init__(self) -> None:
        if self.cpu < 0 or self.memory < 0 or self.bandwidth < 0:
            raise ValueError("capacities must be non-negative")


class Host:
    """A named compute host."""

    def __init__(self, name: str, capacity: Optional[HostCapacity] = None):
        if not name:
            raise ValueError("host name must be non-empty")
        self.name = name
        #: None means "unconstrained" — the resource-aware scheduler
        #: substitutes an effectively infinite capacity.
        self.capacity = capacity

    def __repr__(self) -> str:
        return "Host(%r)" % self.name

    def __hash__(self) -> int:
        return hash(self.name)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Host) and other.name == self.name


class Cluster:
    """An ordered collection of hosts."""

    def __init__(self, hosts: Optional[List[Host]] = None):
        self._hosts: Dict[str, Host] = {}
        #: Directed link capacities in bytes/sec, keyed (src, dst).
        #: Missing entries fall back to ``default_link_bandwidth``.
        self._link_bandwidth: Dict[Tuple[str, str], float] = {}
        self.default_link_bandwidth: Optional[float] = None
        for host in hosts or []:
            self.add(host)

    @classmethod
    def of_size(cls, count: int, prefix: str = "host",
                capacity: Optional[HostCapacity] = None) -> "Cluster":
        if count <= 0:
            raise ValueError("cluster needs at least one host")
        return cls([Host("%s-%d" % (prefix, i), capacity=capacity)
                    for i in range(count)])

    # -- link annotations (resource-aware scheduling) ---------------------

    def set_link_bandwidth(self, src: str, dst: str, bytes_per_sec: float,
                           symmetric: bool = True) -> None:
        """Annotate the src->dst link capacity (and dst->src unless
        ``symmetric=False``)."""
        if src not in self._hosts or dst not in self._hosts:
            raise KeyError("both link endpoints must be cluster hosts")
        if bytes_per_sec <= 0:
            raise ValueError("link bandwidth must be positive")
        self._link_bandwidth[(src, dst)] = bytes_per_sec
        if symmetric:
            self._link_bandwidth[(dst, src)] = bytes_per_sec

    def link_bandwidth(self, src: str, dst: str,
                       default: Optional[float] = None) -> Optional[float]:
        """The annotated src->dst capacity, or the cluster default, or
        ``default`` when neither is set."""
        value = self._link_bandwidth.get((src, dst))
        if value is not None:
            return value
        if self.default_link_bandwidth is not None:
            return self.default_link_bandwidth
        return default

    def add(self, host: Host) -> Host:
        if host.name in self._hosts:
            raise ValueError("duplicate host name: %r" % host.name)
        self._hosts[host.name] = host
        return host

    def get(self, name: str) -> Host:
        return self._hosts[name]

    def __contains__(self, name: str) -> bool:
        return name in self._hosts

    def __len__(self) -> int:
        return len(self._hosts)

    def __iter__(self) -> Iterator[Host]:
        return iter(self._hosts.values())

    @property
    def names(self) -> List[str]:
        return list(self._hosts)

"""Compute hosts and the cluster they form.

A :class:`Host` is a named machine in the compute cluster. The simulation
does not model per-core scheduling — worker compute costs are charged on
the virtual clock directly — but hosts determine *locality*: whether a
tuple transfer is loopback or must cross the LAN (and, for Typhoon,
traverse a host-level TCP tunnel).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional


class Host:
    """A named compute host."""

    def __init__(self, name: str):
        if not name:
            raise ValueError("host name must be non-empty")
        self.name = name

    def __repr__(self) -> str:
        return "Host(%r)" % self.name

    def __hash__(self) -> int:
        return hash(self.name)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Host) and other.name == self.name


class Cluster:
    """An ordered collection of hosts."""

    def __init__(self, hosts: Optional[List[Host]] = None):
        self._hosts: Dict[str, Host] = {}
        for host in hosts or []:
            self.add(host)

    @classmethod
    def of_size(cls, count: int, prefix: str = "host") -> "Cluster":
        if count <= 0:
            raise ValueError("cluster needs at least one host")
        return cls([Host("%s-%d" % (prefix, i)) for i in range(count)])

    def add(self, host: Host) -> Host:
        if host.name in self._hosts:
            raise ValueError("duplicate host name: %r" % host.name)
        self._hosts[host.name] = host
        return host

    def get(self, name: str) -> Host:
        return self._hosts[name]

    def __contains__(self, name: str) -> bool:
        return name in self._hosts

    def __len__(self) -> int:
        return len(self._hosts)

    def __iter__(self) -> Iterator[Host]:
        return iter(self._hosts.values())

    @property
    def names(self) -> List[str]:
        return list(self._hosts)

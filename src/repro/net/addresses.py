"""Worker addressing.

Typhoon fills the Ethernet source/destination address fields with worker
IDs *combined with an application ID as an address prefix* (§3.3.1). We
reproduce that exactly: an address is 6 bytes — a 16-bit application ID
followed by a 32-bit worker ID. The all-ones address is broadcast, used
for one-to-many transfer and controller-injected control tuples (Table 3).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

#: Custom EtherType for Typhoon transport packets (§3.4 suggests 0xffff).
TYPHOON_ETHERTYPE = 0xFFFF

#: EtherType used by the live debugger for mirrored frames.
MIRROR_ETHERTYPE = 0xFFFE

_ADDR_STRUCT = struct.Struct("!HI")

#: Reserved application id for broadcast / control addressing.
_BROADCAST_APP = 0xFFFF
_BROADCAST_WORKER = 0xFFFFFFFF

#: Reserved worker id for the SDN controller endpoint.
_CONTROLLER_WORKER = 0xFFFFFFFE


@dataclass(frozen=True, order=True)
class WorkerAddress:
    """A 48-bit address: (application id, worker id)."""

    app_id: int
    worker_id: int

    def __post_init__(self) -> None:
        if not 0 <= self.app_id <= 0xFFFF:
            raise ValueError("app_id out of range: %r" % (self.app_id,))
        if not 0 <= self.worker_id <= 0xFFFFFFFF:
            raise ValueError("worker_id out of range: %r" % (self.worker_id,))
        # Addresses key every hot-path dict (transport batch buffers,
        # switch ports, flow caches); precompute the hash once instead of
        # re-hashing the field tuple on each lookup.
        object.__setattr__(self, "_hash", hash((self.app_id, self.worker_id)))

    def pack(self) -> bytes:
        return _ADDR_STRUCT.pack(self.app_id, self.worker_id)

    @classmethod
    def unpack(cls, data: bytes) -> "WorkerAddress":
        if len(data) != 6:
            raise ValueError("worker address must be 6 bytes, got %d" % len(data))
        app_id, worker_id = _ADDR_STRUCT.unpack(data)
        return cls(app_id, worker_id)

    @property
    def is_broadcast(self) -> bool:
        return self.app_id == _BROADCAST_APP and self.worker_id == _BROADCAST_WORKER

    @property
    def is_controller(self) -> bool:
        return self.app_id == _BROADCAST_APP and self.worker_id == _CONTROLLER_WORKER

    def __str__(self) -> str:
        if self.is_broadcast:
            return "ff:ff/broadcast"
        if self.is_controller:
            return "ff:ff/controller"
        return "%04x/%08x" % (self.app_id, self.worker_id)


def _cached_hash(self: WorkerAddress) -> int:
    return self._hash


# Assigned after the class body so it unambiguously replaces the
# dataclass-generated __hash__ (same value: hash of the field tuple).
WorkerAddress.__hash__ = _cached_hash  # type: ignore[assignment]


#: The broadcast destination address.
BROADCAST = WorkerAddress(_BROADCAST_APP, _BROADCAST_WORKER)

#: Address representing the SDN controller endpoint (PacketIn destination).
CONTROLLER_ADDRESS = WorkerAddress(_BROADCAST_APP, _CONTROLLER_WORKER)

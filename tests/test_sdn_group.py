"""Unit tests for group tables (all / select, smooth WRR)."""

from collections import Counter

import pytest

from repro.sdn import GROUP_ALL, GROUP_SELECT, Bucket, GroupEntry, GroupTable
from repro.sdn.flow import Output


def test_all_group_returns_every_bucket():
    entry = GroupEntry(1, GROUP_ALL, [Bucket((Output(1),)),
                                      Bucket((Output(2),))])
    buckets = entry.select_buckets()
    assert len(buckets) == 2


def test_select_group_round_robin_equal_weights():
    entry = GroupEntry(1, GROUP_SELECT, [
        Bucket((Output(1),)), Bucket((Output(2),)), Bucket((Output(3),)),
    ])
    picks = [entry.select_buckets()[0].actions[0].port for _ in range(9)]
    assert Counter(picks) == {1: 3, 2: 3, 3: 3}


def test_select_group_weighted_distribution():
    entry = GroupEntry(1, GROUP_SELECT, [
        Bucket((Output(1),), weight=3),
        Bucket((Output(2),), weight=1),
    ])
    picks = [entry.select_buckets()[0].actions[0].port for _ in range(40)]
    counts = Counter(picks)
    assert counts[1] == 30
    assert counts[2] == 10


def test_smooth_wrr_spreads_heavy_bucket():
    # Smooth WRR should interleave, not burst: 3:1 never yields four
    # consecutive picks of the heavy bucket beyond its natural run.
    entry = GroupEntry(1, GROUP_SELECT, [
        Bucket((Output(1),), weight=3),
        Bucket((Output(2),), weight=1),
    ])
    picks = [entry.select_buckets()[0].actions[0].port for _ in range(12)]
    # In every window of 4, port 2 appears exactly once.
    for start in range(0, 12, 4):
        assert picks[start:start + 4].count(2) == 1


def test_set_buckets_resets_state():
    entry = GroupEntry(1, GROUP_SELECT, [Bucket((Output(1),), weight=1)])
    entry.select_buckets()
    entry.set_buckets([Bucket((Output(5),), weight=2),
                       Bucket((Output(6),), weight=2)])
    picks = [entry.select_buckets()[0].actions[0].port for _ in range(4)]
    assert Counter(picks) == {5: 2, 6: 2}


def test_group_validation():
    with pytest.raises(ValueError):
        GroupEntry(1, "fanout", [Bucket((Output(1),))])
    with pytest.raises(ValueError):
        GroupEntry(1, GROUP_ALL, [])
    with pytest.raises(ValueError):
        Bucket((Output(1),), weight=0)


def test_group_table_crud():
    table = GroupTable()
    entry = GroupEntry(9, GROUP_SELECT, [Bucket((Output(1),))])
    table.add(entry)
    assert 9 in table
    assert table.get(9) is entry
    table.remove(9)
    assert 9 not in table
    with pytest.raises(KeyError):
        table.get(9)
    table.remove(9)  # idempotent

"""Unit tests for the XOR-ledger acker component."""

from repro.streaming.acker import AckerBolt, _Ledger
from repro.streaming.executor import ACK_ACK, ACK_COMPLETE, ACK_FAIL, ACK_INIT
from repro.streaming.tuples import ACK_STREAM, StreamTuple


class DirectCollector:
    def __init__(self):
        self.direct = []

    def emit_direct(self, worker_id, values, stream=0):
        self.direct.append((worker_id, tuple(values), stream))


def message(kind, root, value, src=1):
    return StreamTuple((kind, root, value, src), stream=ACK_STREAM)


def test_single_hop_tree_completes():
    acker = AckerBolt()
    collector = DirectCollector()
    root, edge = 0xAAAA, 0xBBBB
    acker.execute(message(ACK_INIT, root, edge, src=7), collector)
    assert not collector.direct
    # The single consumer acks the edge with no children.
    acker.execute(message(ACK_ACK, root, edge, src=2), collector)
    assert collector.direct == [(7, (ACK_COMPLETE, root, 0, -1), ACK_STREAM)]
    assert acker.completed == 1
    assert not acker.ledgers


def test_multi_hop_tree():
    acker = AckerBolt()
    collector = DirectCollector()
    root, e0, e1, e2 = 1, 10, 20, 30
    acker.execute(message(ACK_INIT, root, e0, src=5), collector)
    # Bolt A consumed e0, emitted e1 and e2.
    acker.execute(message(ACK_ACK, root, e0 ^ e1 ^ e2), collector)
    assert not collector.direct  # e1, e2 outstanding
    acker.execute(message(ACK_ACK, root, e1), collector)
    acker.execute(message(ACK_ACK, root, e2), collector)
    assert len(collector.direct) == 1
    assert collector.direct[0][0] == 5


def test_ack_before_init_race():
    acker = AckerBolt()
    collector = DirectCollector()
    root, edge = 2, 99
    # Downstream ack overtakes the spout's init message.
    acker.execute(message(ACK_ACK, root, edge), collector)
    assert not collector.direct
    acker.execute(message(ACK_INIT, root, edge, src=3), collector)
    assert collector.direct[0][0] == 3
    assert acker.completed == 1


def test_incomplete_tree_never_completes():
    acker = AckerBolt()
    collector = DirectCollector()
    acker.execute(message(ACK_INIT, 3, 111, src=1), collector)
    acker.execute(message(ACK_ACK, 3, 111 ^ 222), collector)  # child 222
    assert not collector.direct
    assert 3 in acker.ledgers


def test_independent_roots_tracked_separately():
    acker = AckerBolt()
    collector = DirectCollector()
    acker.execute(message(ACK_INIT, 10, 1, src=1), collector)
    acker.execute(message(ACK_INIT, 20, 2, src=1), collector)
    acker.execute(message(ACK_ACK, 10, 1), collector)
    assert acker.completed == 1
    assert 20 in acker.ledgers
    assert 10 not in acker.ledgers


# -- explicit FAIL notification ----------------------------------------------


def test_explicit_fail_notifies_spout_and_drops_ledger():
    acker = AckerBolt()
    collector = DirectCollector()
    acker.execute(message(ACK_INIT, 5, 123, src=9), collector)
    acker.execute(message(ACK_FAIL, 5, 0, src=2), collector)
    assert collector.direct == [(9, (ACK_FAIL, 5, 0, -1), ACK_STREAM)]
    assert acker.failed == 1
    assert 5 not in acker.ledgers
    # Stragglers of the dead tree re-open nothing permanent... the entry
    # they recreate is an orphan the expiry sweep exists to collect.
    acker.execute(message(ACK_ACK, 5, 123), collector)
    assert len(collector.direct) == 1  # no COMPLETE for a failed root


def test_fail_before_init_leaves_tombstone_until_init_arrives():
    acker = AckerBolt()
    collector = DirectCollector()
    # The bolt's FAIL overtakes the spout's INIT on the ack stream.
    acker.execute(message(ACK_FAIL, 8, 0, src=2), collector)
    assert not collector.direct  # spout worker still unknown
    acker.execute(message(ACK_INIT, 8, 77, src=4), collector)
    assert collector.direct == [(4, (ACK_FAIL, 8, 0, -1), ACK_STREAM)]
    assert 8 not in acker.ledgers and acker.failed == 1


# -- ledger expiry (the leak fix) --------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class _Ctx:
    def __init__(self, services):
        self.services = services


def _expiring_acker(expiry=3.0):
    acker = AckerBolt(expiry=expiry)
    clock = FakeClock()
    acker.open(_Ctx({"now": clock}))
    return acker, clock


def test_orphaned_ledgers_expire_and_map_returns_to_empty():
    """Regression for the ledger leak: a lossy run leaves entries whose
    completions will never arrive (lost INITs, acks of timed-out roots);
    the expiry sweep must return the map to empty."""
    acker, clock = _expiring_acker(expiry=3.0)
    collector = DirectCollector()
    # A lossy run: 50 acks whose INIT (or remaining acks) never arrive.
    for root in range(50):
        clock.now = 0.01 * root
        acker.execute(message(ACK_ACK, root, 1000 + root), collector)
    assert len(acker.ledgers) == 50
    # Healthy traffic long after the loss still completes normally...
    clock.now = 10.0
    acker.execute(message(ACK_INIT, 999, 5, src=3), collector)
    acker.execute(message(ACK_ACK, 999, 5), collector)
    assert collector.direct[-1][0] == 3
    # ...and its arrival swept every stale entry out.
    assert acker.ledgers == {}
    assert acker.expired == 50
    assert acker.stats()["ledgers"] == 0


def test_live_ledgers_survive_the_sweep():
    acker, clock = _expiring_acker(expiry=3.0)
    collector = DirectCollector()
    acker.execute(message(ACK_ACK, 1, 42), collector)   # goes stale
    clock.now = 2.5
    acker.execute(message(ACK_INIT, 2, 7, src=1), collector)  # stays fresh
    clock.now = 4.0
    acker.execute(message(ACK_ACK, 3, 9), collector)  # triggers sweep
    assert 1 not in acker.ledgers  # idle since t=0, past the horizon
    assert 2 in acker.ledgers and 3 in acker.ledgers
    assert acker.expired == 1


def test_sweep_is_rate_limited():
    """Eviction scans run at most every expiry/4, so per-tuple cost
    stays O(1) amortized even with a huge ledger map."""
    acker, clock = _expiring_acker(expiry=4.0)  # sweep gate: every 1.0
    collector = DirectCollector()
    acker.execute(message(ACK_ACK, 1, 42), collector)   # touched t=0
    clock.now = 0.5
    acker.execute(message(ACK_ACK, 2, 43), collector)   # touched t=0.5
    clock.now = 4.05
    acker.execute(message(ACK_ACK, 3, 44), collector)   # sweeps: evicts 1
    assert 1 not in acker.ledgers and 2 in acker.ledgers
    clock.now = 4.6  # root 2 now past the horizon too...
    acker.execute(message(ACK_ACK, 4, 45), collector)
    assert 2 in acker.ledgers  # ...but the next sweep gate is t=5.05
    clock.now = 5.1
    acker.execute(message(ACK_ACK, 5, 46), collector)
    assert 2 not in acker.ledgers
    assert acker.expired == 2


def test_no_expiry_means_no_eviction():
    """Without an expiry horizon (acking topologies predating the fix)
    behavior is unchanged: entries persist indefinitely."""
    acker = AckerBolt()
    collector = DirectCollector()
    acker.execute(message(ACK_ACK, 1, 42), collector)
    for _ in range(100):
        acker.execute(message(ACK_INIT, 2, 7, src=1), collector)
    assert 1 in acker.ledgers


def test_completion_age_tracking():
    acker, clock = _expiring_acker(expiry=100.0)
    collector = DirectCollector()
    acker.execute(message(ACK_INIT, 1, 5, src=1), collector)
    clock.now = 2.0
    acker.execute(message(ACK_ACK, 1, 5), collector)
    stats = acker.stats()
    assert stats["completed"] == 1
    assert stats["mean_age"] == 2.0 and stats["max_age"] == 2.0

"""Unit tests for the XOR-ledger acker component."""

from repro.streaming.acker import AckerBolt, _Ledger
from repro.streaming.executor import ACK_ACK, ACK_COMPLETE, ACK_INIT
from repro.streaming.tuples import ACK_STREAM, StreamTuple


class DirectCollector:
    def __init__(self):
        self.direct = []

    def emit_direct(self, worker_id, values, stream=0):
        self.direct.append((worker_id, tuple(values), stream))


def message(kind, root, value, src=1):
    return StreamTuple((kind, root, value, src), stream=ACK_STREAM)


def test_single_hop_tree_completes():
    acker = AckerBolt()
    collector = DirectCollector()
    root, edge = 0xAAAA, 0xBBBB
    acker.execute(message(ACK_INIT, root, edge, src=7), collector)
    assert not collector.direct
    # The single consumer acks the edge with no children.
    acker.execute(message(ACK_ACK, root, edge, src=2), collector)
    assert collector.direct == [(7, (ACK_COMPLETE, root, 0, -1), ACK_STREAM)]
    assert acker.completed == 1
    assert not acker.ledgers


def test_multi_hop_tree():
    acker = AckerBolt()
    collector = DirectCollector()
    root, e0, e1, e2 = 1, 10, 20, 30
    acker.execute(message(ACK_INIT, root, e0, src=5), collector)
    # Bolt A consumed e0, emitted e1 and e2.
    acker.execute(message(ACK_ACK, root, e0 ^ e1 ^ e2), collector)
    assert not collector.direct  # e1, e2 outstanding
    acker.execute(message(ACK_ACK, root, e1), collector)
    acker.execute(message(ACK_ACK, root, e2), collector)
    assert len(collector.direct) == 1
    assert collector.direct[0][0] == 5


def test_ack_before_init_race():
    acker = AckerBolt()
    collector = DirectCollector()
    root, edge = 2, 99
    # Downstream ack overtakes the spout's init message.
    acker.execute(message(ACK_ACK, root, edge), collector)
    assert not collector.direct
    acker.execute(message(ACK_INIT, root, edge, src=3), collector)
    assert collector.direct[0][0] == 3
    assert acker.completed == 1


def test_incomplete_tree_never_completes():
    acker = AckerBolt()
    collector = DirectCollector()
    acker.execute(message(ACK_INIT, 3, 111, src=1), collector)
    acker.execute(message(ACK_ACK, 3, 111 ^ 222), collector)  # child 222
    assert not collector.direct
    assert 3 in acker.ledgers


def test_independent_roots_tracked_separately():
    acker = AckerBolt()
    collector = DirectCollector()
    acker.execute(message(ACK_INIT, 10, 1, src=1), collector)
    acker.execute(message(ACK_INIT, 20, 2, src=1), collector)
    acker.execute(message(ACK_ACK, 10, 1), collector)
    assert acker.completed == 1
    assert 20 in acker.ledgers
    assert 10 not in acker.ledgers

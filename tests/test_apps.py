"""Integration tests for the four SDN control plane applications (§4)."""

import pytest

from repro.core import TyphoonCluster
from repro.core.apps import (
    AutoScaler,
    CollectingDebugBolt,
    FaultDetector,
    LiveDebugger,
    ScalingPolicy,
    SdnLoadBalancer,
    STORM_DEBUGGER_CAPABILITIES,
    TYPHOON_DEBUGGER_CAPABILITIES,
)
from repro.sim import DEFAULT_COSTS, Engine
from repro.streaming import TopologyBuilder, TopologyConfig
from repro.workloads import word_count_topology
from tests.conftest import CountingSpout, RecordingBolt, simple_chain


# -- fault detector -----------------------------------------------------------


def test_fault_detector_redirects_within_milliseconds():
    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=3)
    detector = cluster.register_app(FaultDetector(cluster))
    config = TopologyConfig(max_spout_rate=3000)
    cluster.submit(word_count_topology("wc", config, splits=2, counts=2,
                                       fault_time=10.0,
                                       words_per_sentence=2))
    engine.run(until=9.0)
    splits = cluster.executors_for("wc", "split")
    healthy = [s for s in splits if s.assignment.task_index != 0][0]
    engine.run(until=25.0)
    assert detector.detections >= 1
    # The healthy split takes over (close to) the whole input stream.
    rate = healthy.processed_meter.rate(15, 24)
    assert rate == pytest.approx(3000, rel=0.2)


def test_fault_detector_ignores_planned_removals():
    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=2)
    detector = cluster.register_app(FaultDetector(cluster))
    config = TopologyConfig(max_spout_rate=2000)
    cluster.submit(word_count_topology("wc", config, splits=3, counts=2,
                                       words_per_sentence=2))
    engine.run(until=8.0)
    cluster.set_parallelism("wc", "split", 2)
    engine.run(until=20.0)
    assert detector.detections == 0  # scale-down is not a fault


def test_fault_detector_restores_after_recovery():
    crash_flag = []

    class CrashOnceBolt(RecordingBolt):
        def execute(self, stream_tuple, collector):
            if not crash_flag and len(self.received) >= 20:
                crash_flag.append(True)
                raise RuntimeError("transient")
            super().execute(stream_tuple, collector)

    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=1)
    detector = cluster.register_app(FaultDetector(cluster))
    builder = TopologyBuilder("t", TopologyConfig(max_spout_rate=500))
    builder.set_spout("source", lambda: CountingSpout(None), 1)
    builder.set_bolt("sink", CrashOnceBolt, 2).shuffle_grouping("source")
    cluster.submit(builder.build())
    engine.run(until=30.0)
    assert detector.detections == 1
    assert detector.restores == 1
    sinks = cluster.executors_for("t", "sink")
    assert len(sinks) == 2
    # After restore both sinks receive traffic again.
    for sink in sinks:
        assert sink.processed_meter.rate(20, 29) > 0


# -- live debugger ------------------------------------------------------------------


def debugger_setup(rate=2000):
    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=2)
    debugger = cluster.register_app(LiveDebugger(cluster))
    config = TopologyConfig(max_spout_rate=rate)
    cluster.submit(simple_chain("dbg", limit=None, config=config))
    engine.run(until=8.0)
    return engine, cluster, debugger


def test_live_debugger_mirrors_without_source_overhead():
    engine, cluster, debugger = debugger_setup()
    source = cluster.executors_for("dbg", "source")[0]
    serializations_before = cluster.transports[source.worker_id].serializations
    emitted_before = source.stats.emitted
    debugger.tap("dbg", "source")
    engine.run(until=20.0)
    debug_executor = debugger.debug_executor("dbg", "source")
    assert debug_executor is not None
    assert debug_executor.stats.processed > 0
    # Mirroring is pure network-level copy: the source still serializes
    # exactly once per tuple.
    serialized = (cluster.transports[source.worker_id].serializations
                  - serializations_before)
    emitted = source.stats.emitted - emitted_before
    assert serialized == emitted


def test_live_debugger_sees_same_tuples_as_sink():
    engine, cluster, debugger = debugger_setup(rate=500)
    debugger.tap("dbg", "source")
    engine.run(until=20.0)
    cluster.deactivate("dbg")
    engine.run(until=25.0)
    sink = cluster.executors_for("dbg", "sink")[0]
    debug_executor = debugger.debug_executor("dbg", "source")
    bolt = debug_executor.component
    assert isinstance(bolt, CollectingDebugBolt)
    # The debug worker saw every tuple mirrored after attach time.
    assert bolt.seen > 0
    assert bolt.window  # retains a display window


def test_live_debugger_detach_stops_mirroring():
    engine, cluster, debugger = debugger_setup(rate=500)
    debugger.tap("dbg", "source")
    engine.run(until=15.0)
    debug_executor = debugger.debug_executor("dbg", "source")
    seen_at_detach = debug_executor.stats.processed
    debugger.untap("dbg", "source")
    engine.run(until=25.0)
    assert debug_executor.stats.processed <= seen_at_detach + 2
    assert not debug_executor.alive  # worker retired
    assert debugger.detaches == 1


def test_debugger_capability_matrix_matches_table5():
    assert TYPHOON_DEBUGGER_CAPABILITIES["dynamic_provisioning"]
    assert not TYPHOON_DEBUGGER_CAPABILITIES["multiple_serialization"]
    assert not STORM_DEBUGGER_CAPABILITIES["dynamic_provisioning"]
    assert STORM_DEBUGGER_CAPABILITIES["multiple_serialization"]


# -- load balancer ------------------------------------------------------------------------


def test_load_balancer_weighted_distribution():
    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=1)
    balancer = cluster.register_app(SdnLoadBalancer(cluster))
    builder = TopologyBuilder("lb", TopologyConfig(max_spout_rate=2000))
    builder.set_spout("source", lambda: CountingSpout(None), 1)
    builder.set_bolt("sink", RecordingBolt, 2).sdn_select_grouping("source")
    cluster.submit(builder.build())
    engine.run(until=6.0)
    record = cluster.manager.topologies["lb"]
    sink_ids = record.physical.worker_ids_for("sink")
    balancer.enable("lb", "source", "sink",
                    weights={sink_ids[0]: 3, sink_ids[1]: 1})
    engine.run(until=20.0)
    sinks = cluster.executors_for("lb", "sink")
    fast = sinks[0].processed_meter.rate(8, 19)
    slow = sinks[1].processed_meter.rate(8, 19)
    assert fast / slow == pytest.approx(3.0, rel=0.15)


def test_load_balancer_reweight_at_runtime():
    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=1)
    balancer = cluster.register_app(SdnLoadBalancer(cluster))
    builder = TopologyBuilder("lb", TopologyConfig(max_spout_rate=2000))
    builder.set_spout("source", lambda: CountingSpout(None), 1)
    builder.set_bolt("sink", RecordingBolt, 2).sdn_select_grouping("source")
    cluster.submit(builder.build())
    engine.run(until=6.0)
    record = cluster.manager.topologies["lb"]
    a, b = record.physical.worker_ids_for("sink")
    balancer.enable("lb", "source", "sink", weights={a: 1, b: 1})
    engine.run(until=12.0)
    balancer.set_weights("lb", "source", "sink", {a: 1, b: 4})
    engine.run(until=24.0)
    sinks = cluster.executors_for("lb", "sink")
    rate_a = sinks[0].processed_meter.rate(14, 23)
    rate_b = sinks[1].processed_meter.rate(14, 23)
    assert rate_b / rate_a == pytest.approx(4.0, rel=0.15)
    assert balancer.rebalances == 1


# -- auto scaler -----------------------------------------------------------------------------


def test_auto_scaler_scales_up_overloaded_component():
    engine = Engine()
    costs = DEFAULT_COSTS
    cluster = TyphoonCluster(engine, num_hosts=2)
    # low_intervals_required is effectively infinite: this test watches
    # the scale-up reaction only (a drained queue would otherwise
    # oscillate the naive threshold policy back down).
    policy = ScalingPolicy(high_queue_depth=20, max_parallelism=3,
                           min_parallelism=2, cooldown=10.0,
                           low_intervals_required=10**6)
    config = TopologyConfig(batch_size=50, max_spout_rate=6000)
    # split work cost makes 2 splits insufficient for 6000 sentences/s
    # (capacity ~2500/s each) while 3 suffice.
    cluster.submit(word_count_topology("wc", config, splits=2, counts=2,
                                       words_per_sentence=1,
                                       split_work_cost=400e-6))
    scaler = cluster.register_app(AutoScaler(
        cluster, "wc", components=["split"], policy=policy,
        poll_interval=3.0))
    engine.run(until=60.0)
    assert scaler.scale_ups >= 1
    assert len(cluster.executors_for("wc", "split")) == 3


def test_auto_scaler_scales_down_idle_component():
    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=2)
    policy = ScalingPolicy(low_queue_depth=5, min_parallelism=1,
                           cooldown=5.0, low_intervals_required=2)
    config = TopologyConfig(max_spout_rate=200)
    cluster.submit(word_count_topology("wc", config, splits=3, counts=2,
                                       words_per_sentence=1))
    scaler = cluster.register_app(AutoScaler(
        cluster, "wc", components=["split"], policy=policy,
        poll_interval=3.0))
    engine.run(until=60.0)
    assert scaler.scale_downs >= 1
    assert len(cluster.executors_for("wc", "split")) < 3

"""Property tests for exactly-once active replication.

Two layers:

* unit-level: randomized interleavings of sequencer stamps, replica
  kills/rejoins, output logging, admissions and commits driven straight
  against :class:`~repro.streaming.replication.ReplicaGroup` — the
  group's ledger properties (monotonic sequencing, exactly-once
  admission, idempotent commits, first-writer-wins output log) must
  hold on every seed;
* cluster-level: full replicated topologies under seeded random
  kill/failover interleavings — after the cluster quiesces, every
  alive replica's state has converged, and the transactional sink's
  committed output is byte-for-byte identical to a fault-free
  reference run of the same workload.
"""

import random

import pytest

from repro.core.apps.fault_detector import FaultDetector
from repro.core.audit import quiesce
from repro.core.runtime import TyphoonCluster
from repro.sim.engine import Engine
from repro.sim.faults import FaultPlan, _crash
from repro.streaming.replication import ReplicaGroup
from repro.streaming.serialize import encode_tuple
from repro.streaming.topology import TopologyConfig
from repro.streaming.tuples import StreamTuple
from repro.workloads.chaosflow import DEDUP_SERVICE, DedupRegistry
from repro.workloads.replicated import replicated_topology


# -- unit-level group-ledger properties -----------------------------------


def _tuple_for(seq: int) -> StreamTuple:
    return StreamTuple(("payload", seq), stream=0, source_worker=1)


@pytest.mark.parametrize("seed", range(12))
def test_group_ledger_properties_random_interleaving(seed):
    rng = random.Random(seed)
    group = ReplicaGroup("t", "c", [10, 11, 12],
                         {10: "h0", 11: "h1", 12: "h2"})
    for worker_id in group.worker_ids:
        group.join(worker_id, None)
    stamped = []
    admitted_seqs = set()
    committed = {}
    epochs_seen = [group.epoch]
    expected_retries = expected_conflicts = 0
    for _step in range(400):
        op = rng.random()
        if op < 0.45:
            st = _tuple_for(len(stamped))
            epoch, seq = group.stamp_input(st)
            # Sequencing is gap-free and monotonic regardless of faults.
            assert seq == len(stamped)
            stamped.append(st)
        elif op < 0.60 and stamped:
            seq = rng.randrange(len(stamped))
            group.log_output(seq, ("out", seq), 0)
            # First-writer-wins: a divergent second write never lands.
            group.log_output(seq, ("DIVERGENT", seq), 0)
        elif op < 0.75 and group.alive:
            victim = rng.choice(sorted(group.alive))
            was_leader = victim == group.leader
            group.mark_down(victim)
            if was_leader and group.alive:
                # Failover promoted a new leader in a fresh epoch.
                assert group.leader == min(group.alive)
                assert group.epoch > epochs_seen[-1]
                epochs_seen.append(group.epoch)
        elif op < 0.85:
            downed = [w for w in group.worker_ids if w not in group.alive]
            if downed:
                worker_id = rng.choice(downed)
                group.mark_up(worker_id)
                group.join(worker_id, None)
        elif op < 0.95 and stamped:
            seq = rng.randrange(len(stamped))
            first = group.admit(seq)
            assert first == (seq not in admitted_seqs)
            admitted_seqs.add(seq)
        elif stamped:
            seq = rng.randrange(len(stamped))
            values = ("commit", seq)
            first = group.commit(seq, values)
            assert first == (seq not in committed)
            if not first:
                expected_retries += 1
            committed[seq] = values
            # Identical retry collapses; different values conflict —
            # neither re-applies.
            assert group.commit(seq, values) is False
            expected_retries += 1
            assert group.commit(seq, ("other", seq)) is False
            expected_conflicts += 1
    assert group.admitted == len(admitted_seqs)
    assert group.commits == len(committed)
    assert group.commit_retries == expected_retries
    assert group.commit_conflicts == expected_conflicts
    for seq in range(group.outputs_logged):
        record = group.output_log.get(seq)
        if record is not None:
            assert record.values[0] != "DIVERGENT"


def test_group_repair_serves_byte_identical_input():
    group = ReplicaGroup("t", "c", [1, 2], {1: "h0", 2: "h1"})
    group.join(1, None)
    group.join(2, None)
    for seq in range(32):
        group.stamp_input(_tuple_for(seq))
    for seq in range(32):
        fetched = group.fetch_input(seq)
        assert fetched is not None
        assert encode_tuple(fetched) == encode_tuple(_tuple_for(seq))


# -- cluster-level convergence vs. a fault-free reference -----------------


def _run_replicated(seed, fault_seed=None, duration=8.0, rate=400.0):
    """One full replicated run; returns (committed-bytes, per-replica
    states, group, registry)."""
    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=3, seed=seed)
    cluster.register_app(FaultDetector(cluster))
    registry = DedupRegistry(at_least_once=False)
    cluster.services[DEDUP_SERVICE] = registry
    config = TopologyConfig(batch_size=50, max_spout_rate=rate,
                            reliable_control=True)
    cluster.submit(replicated_topology("prop", config))
    group = cluster.replication.group_of("prop", "rstate")
    engine.run(until=2.0)
    if fault_seed is not None:
        rng = random.Random(fault_seed)
        plan = FaultPlan(cluster)

        def kill(role):
            def action():
                if role == "leader":
                    victim = group.leader
                else:
                    alive = sorted(w for w in group.alive
                                   if w != group.leader)
                    victim = alive[-1] if alive else None
                if victim is not None:
                    _crash(cluster, victim, "property-test kill")
            return action

        for _ in range(rng.randint(2, 4)):
            when = rng.uniform(2.5, duration - 1.0)
            role = rng.choice(["leader", "follower"])
            plan.custom(when, "kill %s" % role, kill(role))
        plan.arm()
    engine.run(until=duration + 5.0)
    quiesce(cluster, settle=2.0)
    committed = b"".join(
        encode_tuple(StreamTuple(tuple(group.committed[seq]), stream=0,
                                 source_worker=0))
        for seq in sorted(group.committed))
    states = {}
    for executor in cluster.executors_for("prop", "rstate"):
        if executor.alive and executor.worker_id in group.alive:
            states[executor.worker_id] = dict(executor.component.counts)
    return committed, states, group, registry


@pytest.mark.parametrize("fault_seed", [7, 23])
def test_faulted_run_matches_fault_free_reference(fault_seed):
    reference, ref_states, ref_group, ref_registry = _run_replicated(0)
    assert ref_registry.duplicates == 0
    assert not ref_registry.missing_keys()
    reference_state = next(iter(ref_states.values()))

    committed, states, group, registry = _run_replicated(
        0, fault_seed=fault_seed)
    # Exactly-once held: nothing lost, nothing double-applied.
    assert registry.duplicates == 0
    assert not registry.missing_keys()
    assert group.commit_conflicts == 0
    assert group.divergence == 0
    # Every surviving replica converged to the same state, and that
    # state is the fault-free one.
    assert states
    for state in states.values():
        assert state == reference_state
    # The committed output stream is byte-for-byte the reference's.
    assert committed == reference

"""Unit tests for the generic SDN controller runtime."""

import pytest

from repro.net import TYPHOON_ETHERTYPE, EthernetFrame, WorkerAddress
from repro.sdn import (
    ControllerApp,
    FlowStatsReply,
    Match,
    OFPP_CONTROLLER,
    Output,
    PacketIn,
    PacketOut,
    PortStatsReply,
    PortStatus,
    SdnController,
    SoftwareSwitch,
)
from repro.sim import DEFAULT_COSTS, Engine


class RecorderApp(ControllerApp):
    name = "recorder"

    def __init__(self):
        super().__init__()
        self.started = False
        self.switches = []
        self.packet_ins = []
        self.port_events = []
        self.stats = []

    def on_start(self):
        self.started = True

    def on_switch_connected(self, switch):
        self.switches.append(switch.dpid)

    def on_packet_in(self, message):
        self.packet_ins.append(message)

    def on_port_status(self, message):
        self.port_events.append(message)

    def on_port_stats(self, message):
        self.stats.append(message)


def setup():
    engine = Engine()
    controller = SdnController(engine, DEFAULT_COSTS)
    switch = SoftwareSwitch(engine, DEFAULT_COSTS, dpid="sw0")
    controller.connect_switch(switch)
    return engine, controller, switch


def test_register_app_sees_existing_switches():
    engine, controller, switch = setup()
    app = RecorderApp()
    controller.register_app(app)
    assert app.started
    assert app.switches == ["sw0"]
    assert controller.app("recorder") is app
    with pytest.raises(KeyError):
        controller.app("nope")


def test_duplicate_switch_rejected():
    engine, controller, switch = setup()
    with pytest.raises(ValueError):
        controller.connect_switch(switch)


def test_install_flow_arrives_after_control_latency():
    engine, controller, switch = setup()
    controller.install_flow("sw0", Match(in_port=1), [Output(2)])
    assert len(switch.flows) == 0  # not yet delivered/installed
    engine.run(until=DEFAULT_COSTS.openflow_rtt / 2
               + DEFAULT_COSTS.flow_install_latency + 1e-6)
    assert len(switch.flows) == 1


def test_port_status_dispatched_to_apps():
    engine, controller, switch = setup()
    app = controller.register_app(RecorderApp())
    port = switch.add_port("w1", lambda f, t: None)
    switch.remove_port(port)
    engine.run(until=1.0)
    assert [e.reason for e in app.port_events] == ["add", "delete"]


def test_packet_in_dispatch():
    engine, controller, switch = setup()
    app = controller.register_app(RecorderApp())
    p_in = switch.add_port("w1", lambda f, t: None)
    controller.install_flow("sw0", Match(in_port=p_in),
                            [Output(OFPP_CONTROLLER)])
    engine.run(until=0.01)
    frame = EthernetFrame(WorkerAddress(1, 2), WorkerAddress(1, 1),
                          TYPHOON_ETHERTYPE, b"x")
    switch.inject(p_in, frame)
    engine.run(until=0.05)
    assert len(app.packet_ins) == 1
    assert app.packet_ins[0].dpid == "sw0"


def test_stats_request_event_resolution():
    engine, controller, switch = setup()
    switch.add_port("w1", lambda f, t: None)
    gate = controller.request_port_stats("sw0")
    engine.run(until=0.1)
    assert gate.triggered
    reply = gate.value
    assert isinstance(reply, PortStatsReply)
    assert reply.dpid == "sw0"
    names = [e.port_name for e in reply.entries]
    assert "w1" in names


def test_flow_stats_request_event():
    engine, controller, switch = setup()
    controller.install_flow("sw0", Match(in_port=1), [Output(2)])
    engine.run(until=0.01)
    gate = controller.request_flow_stats("sw0")
    engine.run(until=0.1)
    assert isinstance(gate.value, FlowStatsReply)
    assert len(gate.value.entries) == 1


def test_send_to_unknown_switch_raises():
    engine, controller, _switch = setup()
    with pytest.raises(KeyError):
        controller.install_flow("missing", Match(), [Output(1)])


def test_every_runs_periodic_task():
    engine, controller, _switch = setup()
    ticks = []
    controller.every(1.0, lambda: ticks.append(engine.now))
    engine.run(until=5.5)
    assert len(ticks) == 5
    controller.shutdown()
    engine.run(until=10.0)
    assert len(ticks) == 5  # stopped


def test_packet_out_reaches_port():
    engine, controller, switch = setup()
    received = []
    port = switch.add_port("w1", lambda f, t: received.append(f))
    frame = EthernetFrame(WorkerAddress(1, 1), WorkerAddress(1, 0),
                          TYPHOON_ETHERTYPE, b"ctl")
    controller.packet_out("sw0", PacketOut(frame, (Output(port),),
                                           in_port=OFPP_CONTROLLER))
    engine.run(until=0.05)
    assert received == [frame]

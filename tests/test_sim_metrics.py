"""Unit tests for metrics (rate meters, distributions, time series)."""

import pytest

from repro.sim import Distribution, Engine, MetricsRegistry, RateMeter, TimeSeries


def test_timeseries_ordering_enforced():
    series = TimeSeries("t")
    series.record(1.0, 10)
    series.record(2.0, 20)
    with pytest.raises(ValueError):
        series.record(1.5, 15)


def test_timeseries_value_at():
    series = TimeSeries("t")
    series.record(1.0, 10)
    series.record(3.0, 30)
    assert series.value_at(0.5) == 0.0
    assert series.value_at(1.0) == 10
    assert series.value_at(2.9) == 10
    assert series.value_at(3.5) == 30


def test_timeseries_window_and_stats():
    series = TimeSeries("t")
    for t in range(10):
        series.record(float(t), t * 2.0)
    window = series.window(3.0, 6.0)
    assert window.times == [3.0, 4.0, 5.0, 6.0]
    assert window.mean() == pytest.approx(9.0)
    assert window.max() == 12.0
    assert window.min() == 6.0


def test_rate_meter_buckets(engine):
    meter = RateMeter(engine, interval=1.0)

    def producer():
        for _ in range(30):
            meter.mark()
            yield 0.1

    engine.process(producer())
    engine.run()
    series = meter.series(0, 3)
    assert len(series) == 3
    assert sum(v for _t, v in series) == pytest.approx(30.0)
    assert meter.total == 30


def test_rate_meter_rate_window(engine):
    meter = RateMeter(engine)

    def producer():
        yield 1.0
        for _ in range(100):
            meter.mark()
            yield 0.01

    engine.process(producer())
    engine.run()
    assert meter.rate(1.0, 2.0) == pytest.approx(100.0, rel=0.05)
    assert meter.rate(3.0, 4.0) == 0.0


def test_rate_meter_empty_buckets_are_zero(engine):
    meter = RateMeter(engine)
    meter.mark(5)
    engine.schedule(4.0, lambda: None)
    engine.run()
    series = meter.series(0, 4)
    assert [v for _t, v in series] == [5.0, 0.0, 0.0, 0.0]


def test_distribution_percentiles():
    dist = Distribution("lat")
    dist.extend(float(v) for v in range(1, 101))
    assert dist.percentile(0) == 1.0
    assert dist.percentile(100) == 100.0
    assert dist.median == pytest.approx(50.5)
    assert dist.percentile(90) == pytest.approx(90.1)


def test_distribution_cdf_monotone():
    dist = Distribution("lat")
    dist.extend([5.0, 1.0, 3.0, 2.0, 4.0])
    cdf = dist.cdf()
    values = [v for v, _f in cdf]
    fractions = [f for _v, f in cdf]
    assert values == sorted(values)
    assert fractions[-1] == pytest.approx(1.0)
    assert all(f1 <= f2 for f1, f2 in zip(fractions, fractions[1:]))


def test_distribution_cdf_downsamples():
    dist = Distribution("lat")
    dist.extend(float(v) for v in range(1000))
    cdf = dist.cdf(points=50)
    assert len(cdf) <= 50
    assert cdf[-1][1] == pytest.approx(1.0)


def test_distribution_fraction_below():
    dist = Distribution("lat")
    dist.extend([1.0, 2.0, 3.0, 4.0])
    assert dist.fraction_below(2.5) == 0.5
    assert dist.fraction_below(0.5) == 0.0
    assert dist.fraction_below(10.0) == 1.0


def test_distribution_errors():
    dist = Distribution("lat")
    with pytest.raises(ValueError):
        dist.percentile(50)
    dist.record(1.0)
    with pytest.raises(ValueError):
        dist.percentile(101)


def test_registry_reuses_instances(engine):
    registry = MetricsRegistry(engine)
    assert registry.meter("m") is registry.meter("m")
    assert registry.counter("c") is registry.counter("c")
    assert registry.distribution("d") is registry.distribution("d")
    assert registry.timeseries("t") is registry.timeseries("t")
    registry.counter("c").add(3)
    assert registry.counter("c").value == 3


# -- edge cases locked in with the tracing work -------------------------------


def test_distribution_percentile_empty_raises():
    with pytest.raises(ValueError):
        Distribution("lat").percentile(0)


def test_distribution_percentile_single_sample():
    dist = Distribution("lat")
    dist.record(7.5)
    for p in (0, 25, 50, 99, 100):
        assert dist.percentile(p) == 7.5


def test_distribution_percentile_duplicates():
    dist = Distribution("lat")
    dist.extend([4.0, 4.0, 4.0, 4.0])
    assert dist.percentile(0) == 4.0
    assert dist.percentile(50) == 4.0
    assert dist.percentile(100) == 4.0
    dist.record(8.0)
    assert dist.percentile(100) == 8.0
    assert dist.percentile(50) == 4.0


def test_distribution_percentile_interpolates():
    dist = Distribution("lat")
    dist.extend([1.0, 3.0])
    assert dist.percentile(50) == pytest.approx(2.0)
    assert dist.percentile(25) == pytest.approx(1.5)


def test_distribution_cdf_rejects_nonpositive_points():
    dist = Distribution("lat")
    dist.extend([1.0, 2.0])
    with pytest.raises(ValueError):
        dist.cdf(points=0)
    with pytest.raises(ValueError):
        dist.cdf(points=-3)
    assert dist.cdf(points=1)[-1][1] == pytest.approx(1.0)


def test_distribution_cdf_empty_is_empty():
    assert Distribution("lat").cdf() == []


def test_distribution_samples_returns_copy():
    dist = Distribution("lat")
    dist.extend([2.0, 1.0])
    samples = dist.samples()
    samples.append(99.0)
    assert len(dist) == 2
    assert sorted(dist.samples()) == [1.0, 2.0]


def test_distribution_total_is_order_independent():
    values = [0.1, 0.2, 0.3, 1e-9, 1e9, -0.25]
    forward, backward = Distribution("a"), Distribution("b")
    forward.extend(values)
    backward.extend(reversed(values))
    assert forward.total() == backward.total()   # fsum: exact equality
    assert Distribution("empty").total() == 0.0


def test_timeseries_window_boundaries_inclusive():
    series = TimeSeries("t")
    for t in (1.0, 2.0, 3.0, 4.0):
        series.record(t, t * 10)
    # Both endpoints are included; outside samples are not.
    assert series.window(2.0, 3.0).times == [2.0, 3.0]
    assert series.window(2.0, 2.0).times == [2.0]
    assert series.window(4.0, 9.0).times == [4.0]
    assert series.window(4.5, 9.0).times == []
    assert series.window(3.0, 2.0).times == []   # empty interval

"""Integration tests for worker relocation (§8: pause-and-resume via
control tuples with state in external storage)."""

import pytest

from repro.core import ReconfigurationError, TyphoonCluster
from repro.ext import RedisClient, RedisStore
from repro.sim import Engine
from repro.streaming import Grouping, TopologyBuilder, TopologyConfig
from repro.streaming.topology import Bolt
from tests.conftest import CountingSpout


class ExternalStateCounter(Bolt):
    """Keeps a small in-memory cache; durable counts live in Redis.

    On SIGNAL (the relocation procedure injects one) the cache is
    persisted, so a relocated replacement resumes from external state —
    the §8 pattern.
    """

    def __init__(self):
        self.cache = {}
        self._redis = None

    def open(self, ctx):
        self._redis = RedisClient(ctx.services["redis"])

    def execute(self, stream_tuple, collector):
        key = "k%d" % (stream_tuple[1] % 5)
        self.cache[key] = self.cache.get(key, 0) + 1
        collector.charge(0)

    def _persist(self, collector):
        for key, value in sorted(self.cache.items()):
            self._redis.hincrby("counter", key, value)
        collector.charge(self._redis.drain_cost())
        self.cache.clear()

    def on_signal(self, signal, collector):
        self._persist(collector)


def start(seed=0):
    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=3, seed=seed)
    store = RedisStore()
    cluster.services["redis"] = store
    builder = TopologyBuilder("rel", TopologyConfig(batch_size=50,
                                                    max_spout_rate=1000))
    builder.set_spout("source", lambda: CountingSpout(None), 1)
    builder.set_bolt("state", ExternalStateCounter, 2,
                     stateful=True).fields_grouping("source", [1])
    cluster.submit(builder.build())
    engine.run(until=8.0)
    return engine, cluster, store


def test_relocation_moves_worker_and_keeps_traffic():
    engine, cluster, store = start()
    record = cluster.manager.topologies["rel"]
    victim = record.physical.workers_for("state")[0]
    old_host = victim.hostname
    new_host = next(name for name in cluster.manager.agents
                    if name != old_host)
    request = cluster.relocate_worker("rel", victim.worker_id, new_host)
    engine.run(until=25.0)
    assert request.triggered and not request.failed
    moved = record.physical.worker(victim.worker_id)
    assert moved.hostname == new_host
    executor = cluster.executor(victim.worker_id)
    assert executor is not None and executor.alive
    assert executor.assignment.hostname == new_host
    # Traffic resumed on the relocated worker.
    engine.run(until=35.0)
    assert executor.processed_meter.rate(28, 34) > 0


def test_relocation_persists_state_via_signal():
    engine, cluster, store = start()
    record = cluster.manager.topologies["rel"]
    victim = record.physical.workers_for("state")[0]
    old_executor = cluster.executor(victim.worker_id)
    engine.run(until=12.0)
    assert old_executor.component.cache  # state accumulated in memory
    new_host = next(name for name in cluster.manager.agents
                    if name != victim.hostname)
    cluster.relocate_worker("rel", victim.worker_id, new_host)
    engine.run(until=25.0)
    # The SIGNAL persisted the in-memory cache before the move.
    assert store.hgetall("counter")
    assert not old_executor.alive


def test_relocation_no_tuple_loss_with_siblings():
    engine, cluster, store = start()
    record = cluster.manager.topologies["rel"]
    victim = record.physical.workers_for("state")[0]
    new_host = next(name for name in cluster.manager.agents
                    if name != victim.hostname)
    cluster.relocate_worker("rel", victim.worker_id, new_host)
    engine.run(until=25.0)
    cluster.deactivate("rel")
    engine.run(until=30.0)
    source = cluster.executors_for("rel", "source")[0]
    prefix = "rel.state."
    processed = sum(m.total for name, m in cluster.metrics.meters.items()
                    if name.startswith(prefix) and name.endswith(".processed"))
    assert processed == source.stats.emitted


def test_relocation_same_host_is_noop():
    engine, cluster, store = start()
    record = cluster.manager.topologies["rel"]
    victim = record.physical.workers_for("state")[0]
    request = cluster.relocate_worker("rel", victim.worker_id,
                                      victim.hostname)
    engine.run(until=15.0)
    assert request.triggered
    executor = cluster.executor(victim.worker_id)
    assert executor is not None and executor.alive


def test_relocation_unknown_target_rejected():
    engine, cluster, store = start()
    record = cluster.manager.topologies["rel"]
    victim = record.physical.workers_for("state")[0]
    request = cluster.relocate_worker("rel", victim.worker_id, "mars")
    failures = []
    request.add_callback(lambda ev: failures.append(ev.failed))
    engine.run(until=15.0)
    assert failures == [True]


def test_relocation_unknown_worker_rejected():
    engine, cluster, store = start()
    with pytest.raises(KeyError):
        cluster.relocate_worker("rel", 999, "host-1")

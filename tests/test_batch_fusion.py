"""Batch-fused data plane equivalence (tuple trains).

The fused path — whole-batch train encode on the emit side, batched
frame forwarding, whole-train delivery on the receive side, plus the
optional ``next_tuple_batch`` / ``execute_batch`` component hooks — is
an *optimization*, not a semantic change. These tests pin that down:

* train encoders produce byte-for-byte the frames the per-tuple encoder
  would (randomized seeded batches, every scalar type, containers,
  batch size 1);
* end-to-end runs with the fused path forced off (train encode disabled
  *and* component batch hooks removed) produce identical delivered
  counts, sequence-check results and delivery-ledger totals;
* the batch component hooks never engage where they would be unsound
  (guaranteed processing), and batch-granularity faults stay
  deterministic.
"""

import random

import pytest

from repro.core import TyphoonCluster
from repro.core import io_layer
from repro.sim import Engine
from repro.streaming import TopologyConfig
from repro.streaming.serialize import (
    encode_train,
    encode_train_uniform,
    encode_tuple,
)
from repro.streaming.topology import Bolt, TopologyBuilder
from repro.streaming.tuples import Anchor, StreamTuple
from repro.workloads import broadcast_topology, forwarding_topology
from repro.workloads.sentences import (
    NullSinkBolt,
    SequenceCheckBolt,
    SequenceSpout,
)

_RECORD_PREFIX = 4  # u32 length prefix per record inside a train


def _per_tuple_frame_bytes(tuples):
    """What the per-tuple path puts on the wire for the same batch."""
    out = bytearray()
    for stream_tuple in tuples:
        record = encode_tuple(stream_tuple)
        out += len(record).to_bytes(_RECORD_PREFIX, "big")
        out += record
    return bytes(out)


def _random_scalar(rng):
    kind = rng.randrange(7)
    if kind == 0:
        return "word%04d" % rng.randrange(50)
    if kind == 1:
        return rng.randrange(-2 ** 40, 2 ** 40)
    if kind == 2:
        return rng.randrange(2 ** 70)  # bigint record
    if kind == 3:
        return rng.random()
    if kind == 4:
        return None
    if kind == 5:
        return rng.random() < 0.5
    return bytes([rng.randrange(256)] * rng.randrange(1, 8))


def _random_batch(rng, size, stream=0, src=3, containers=False):
    batch = []
    for _ in range(size):
        width = rng.randrange(1, 4)
        values = tuple(_random_scalar(rng) for _ in range(width))
        if containers and rng.random() < 0.2:
            values = values + ([1, 2], )
        batch.append(StreamTuple(values=values, stream=stream,
                                 source_worker=src))
    return batch


# -- encoder byte identity ----------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("size", [1, 3, 17, 100])
def test_encode_train_matches_per_tuple_bytes(seed, size):
    rng = random.Random(seed)
    batch = _random_batch(rng, size, containers=True)
    train = encode_train(batch)
    assert train is not None
    data, bounds, rlens, ests, objs, stream = train
    assert data == _per_tuple_frame_bytes(batch)
    # Structural consistency: bounds bracket each length-prefixed
    # record, ests are cumulative and rlens match the prefixes.
    assert len(bounds) == size + 1 and len(ests) == size + 1
    assert bounds[0] == 0 and bounds[-1] == len(data)
    for i, rlen in enumerate(rlens):
        assert bounds[i + 1] - bounds[i] - _RECORD_PREFIX == rlen
        prefix = int.from_bytes(data[bounds[i]:bounds[i] + _RECORD_PREFIX],
                                "big")
        assert prefix == rlen
    assert stream == 0
    if objs is not None:
        # Container records ride as None (decode at delivery); every
        # fast-lane record keeps its object.
        for stream_tuple, obj in zip(batch, objs):
            has_container = any(isinstance(v, list)
                                for v in stream_tuple.values)
            assert (obj is None) == has_container


@pytest.mark.parametrize("seed", [3, 4, 5])
@pytest.mark.parametrize("size", [1, 2, 25, 100])
def test_encode_train_uniform_matches_general(seed, size):
    rng = random.Random(seed)
    batch = _random_batch(rng, size, stream=7, src=11)
    uniform = encode_train_uniform(batch, 7, 11)
    general = encode_train(batch)
    assert uniform == general
    assert uniform[0] == _per_tuple_frame_bytes(batch)
    assert uniform[5] == 7


def test_encode_train_uniform_container_delegates():
    rng = random.Random(9)
    batch = _random_batch(rng, 10, containers=False)
    batch[4] = StreamTuple(values=(1, [2, 3]), stream=0, source_worker=3)
    uniform = encode_train_uniform(batch, 0, 3)
    assert uniform == encode_train(batch)
    assert uniform[0] == _per_tuple_frame_bytes(batch)
    objs = uniform[4]
    assert objs is not None and objs[4] is None and objs[3] is batch[3]


def test_encode_train_refuses_stamped_tuples():
    plain = StreamTuple(values=("a", 1))
    anchored = StreamTuple(values=("a", 1), anchor=Anchor(5, 6))
    traced = StreamTuple(values=("a", 1), trace_id=9)
    sequenced = StreamTuple(values=("a", 1), seq=(1, 2))
    for stamped in (anchored, traced, sequenced):
        assert encode_train([plain, stamped, plain]) is None


def test_mixed_stream_train_reports_no_stream():
    a = StreamTuple(values=("a", 1), stream=0)
    b = StreamTuple(values=("b", 2), stream=5)
    train = encode_train([a, b])
    assert train is not None
    assert train[5] is None  # mixed → receiver must not batch-execute


# -- end-to-end equivalence ---------------------------------------------------


def _force_per_tuple(monkeypatch):
    """Disable every layer of the fused path: train encodes fall back
    to the per-tuple wire path and the component batch hooks vanish."""
    monkeypatch.setattr(io_layer, "encode_train", lambda tuples: None)
    monkeypatch.setattr(io_layer, "encode_train_uniform",
                        lambda tuples, stream, src: None)
    monkeypatch.setattr(SequenceSpout, "next_tuple_batch", None)
    monkeypatch.setattr(SequenceCheckBolt, "execute_batch", None)
    monkeypatch.setattr(NullSinkBolt, "execute_batch", None)


def _run_forwarding(seed=0, batch_size=100, until=3.2, acking=False):
    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=1, seed=seed)
    config = TopologyConfig(batch_size=batch_size, acking=acking,
                            num_ackers=1 if acking else 0)
    cluster.submit(forwarding_topology("fwd", config))
    engine.run(until=until)
    source = cluster.executors_for("fwd", "source")[0]
    sink = cluster.executors_for("fwd", "sink")[0]
    return {
        "emitted": source.stats.emitted,
        "processed": sink.stats.processed,
        "count": sink.component.count,
        "out_of_order": sink.component.out_of_order,
        "last": dict(sink.component._last),
        "ledger": {
            "sent": dict(cluster.ledger.sent),
            "delivered": dict(cluster.ledger.delivered),
            "drops": dict(cluster.ledger.drops),
        },
    }


def _run_broadcast(seed=0, sinks=3, until=3.2):
    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=2, seed=seed)
    cluster.submit(broadcast_topology("bc", sinks,
                                      TopologyConfig(batch_size=100)))
    engine.run(until=until)
    source = cluster.executors_for("bc", "source")[0]
    sink_execs = cluster.executors_for("bc", "sink")
    return {
        "emitted": source.stats.emitted,
        "per_sink": [e.stats.processed for e in sink_execs],
        "last": [e.component.last_values for e in sink_execs],
        "ledger": {
            "sent": dict(cluster.ledger.sent),
            "delivered": dict(cluster.ledger.delivered),
            "drops": dict(cluster.ledger.drops),
        },
    }


@pytest.mark.parametrize("batch_size", [1, 7, 100])
def test_forwarding_fused_equals_forced_per_tuple(monkeypatch, batch_size):
    fused = _run_forwarding(seed=2, batch_size=batch_size)
    with monkeypatch.context() as patch:
        _force_per_tuple(patch)
        forced = _run_forwarding(seed=2, batch_size=batch_size)
    assert fused == forced
    assert fused["out_of_order"] == 0
    assert fused["processed"] > 0


def test_broadcast_fused_equals_forced_per_tuple(monkeypatch):
    fused = _run_broadcast(seed=3)
    with monkeypatch.context() as patch:
        _force_per_tuple(patch)
        forced = _run_broadcast(seed=3)
    assert fused == forced
    assert min(fused["per_sink"]) > 0
    # Network-level replication: every sink sees the same train.
    assert len(set(fused["per_sink"])) == 1


def test_batch_hooks_alone_change_nothing(monkeypatch):
    """Trains stay on; only the component batch hooks are removed. The
    executor must produce identical results either way."""
    fused = _run_forwarding(seed=4)
    with monkeypatch.context() as patch:
        patch.setattr(SequenceSpout, "next_tuple_batch", None)
        patch.setattr(SequenceCheckBolt, "execute_batch", None)
        forced = _run_forwarding(seed=4)
    assert fused == forced


def test_acked_run_never_engages_batch_hooks(monkeypatch):
    """Under guaranteed processing the batch hooks must be inert: an
    acked run with the hooks present equals one with them removed."""
    with_hooks = _run_forwarding(seed=5, acking=True)
    with monkeypatch.context() as patch:
        patch.setattr(SequenceSpout, "next_tuple_batch", None)
        patch.setattr(SequenceCheckBolt, "execute_batch", None)
        without = _run_forwarding(seed=5, acking=True)
    assert with_hooks == without
    assert with_hooks["processed"] > 0


class _FaultyBatchSink(Bolt):
    """A sink whose batch hook crashes mid-stream: batch-granularity
    fault semantics (the whole delivery is forfeited, deterministically)."""

    def __init__(self, fault_after=500):
        self.fault_after = fault_after
        self.count = 0

    def execute(self, stream_tuple, collector):
        self.count += 1

    def execute_batch(self, stream_tuples, collector):
        if self.count >= self.fault_after:
            raise RuntimeError("mid-train fault")
        self.count += len(stream_tuples)


def test_mid_train_fault_is_deterministic():
    def run():
        engine = Engine()
        cluster = TyphoonCluster(engine, num_hosts=1, seed=6)
        builder = TopologyBuilder("ft", TopologyConfig(batch_size=100))
        builder.set_spout("source", lambda: SequenceSpout("payload"), 1,
                          max_pending=2000)
        builder.set_bolt("sink", _FaultyBatchSink, 1).shuffle_grouping(
            "source")
        cluster.submit(builder.build())
        engine.run(until=4.0)
        # The fault crashes the worker (batch-granularity semantics), so
        # reach past the alive-filtered accessor for its final state.
        record = cluster.record("ft")
        worker_id = record.physical.worker_ids_for("sink")[0]
        sink = cluster.executors[worker_id]
        return (sink.stats.processed, sink.stats.crashes,
                sink.component.count, sink.alive)

    first = run()
    second = run()
    assert first == second
    assert first[1] >= 1  # the fault actually fired
    assert first[2] >= 500

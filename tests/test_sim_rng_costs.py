"""Unit tests for seeding and the cost model."""

import dataclasses

import pytest

from repro.sim import CostModel, DEFAULT_COSTS, SeedFactory, as_factory, derive_seed
from repro.sim.costs import transmission_delay


def test_derive_seed_stable_and_distinct():
    assert derive_seed(1, "a") == derive_seed(1, "a")
    assert derive_seed(1, "a") != derive_seed(1, "b")
    assert derive_seed(1, "a") != derive_seed(2, "a")


def test_named_streams_independent():
    factory = SeedFactory(42)
    first = factory.rng("gen")
    second = factory.rng("routing")
    a = [first.random() for _ in range(5)]
    b = [second.random() for _ in range(5)]
    assert a != b
    # Re-creating the same name reproduces the stream.
    again = factory.rng("gen")
    assert [again.random() for _ in range(5)] == a


def test_child_factories_do_not_collide():
    root = SeedFactory(7)
    child_a = root.child("x")
    child_b = root.child("y")
    assert child_a.rng("n").random() != child_b.rng("n").random()


def test_as_factory_coercion():
    factory = SeedFactory(3)
    assert as_factory(factory) is factory
    assert as_factory(5).root_seed == 5
    assert as_factory(None).root_seed == 0


def test_cost_model_scaled_copy():
    scaled = DEFAULT_COSTS.scaled(serialize_per_tuple=1.0)
    assert scaled.serialize_per_tuple == 1.0
    assert DEFAULT_COSTS.serialize_per_tuple != 1.0
    assert scaled.heartbeat_timeout == DEFAULT_COSTS.heartbeat_timeout


def test_cost_model_all_costs_nonnegative():
    for field in dataclasses.fields(CostModel):
        value = getattr(DEFAULT_COSTS, field.name)
        if isinstance(value, (int, float)):
            assert value >= 0, field.name


def test_transmission_delay_local_vs_remote():
    local = transmission_delay(DEFAULT_COSTS, 1000, remote=False)
    remote = transmission_delay(DEFAULT_COSTS, 1000, remote=True)
    assert local == DEFAULT_COSTS.loopback_latency
    assert remote > local


def test_transmission_delay_scales_with_size():
    small = transmission_delay(DEFAULT_COSTS, 100, remote=True)
    large = transmission_delay(DEFAULT_COSTS, 1_000_000, remote=True)
    assert large > small

"""Focused unit tests for the worker executor (framework layer)."""

import pytest

from repro.sim import DEFAULT_COSTS, Engine, MetricsRegistry
from repro.sim.rng import SeedFactory
from repro.streaming import (
    Delivery,
    Grouping,
    LogicalNode,
    SHUFFLE,
    StreamTuple,
    Router,
    Transport,
    TopologyConfig,
    WorkerAssignment,
    WorkerExecutor,
    signal_tuple,
)
from repro.streaming.executor import OutOfMemoryError
from repro.streaming.topology import BOLT, SPOUT, Bolt, Spout
from repro.streaming.tuples import CONTROL_STREAM


class FakeTransport(Transport):
    """Records sends; charges a fixed cost per call."""

    def __init__(self, cost=1e-6):
        self.cost = cost
        self.sent = []
        self.broadcasts = []
        self.flushes = 0
        self.closed = False
        self.batch_size = 100

    def send(self, stream_tuple, dst_worker_ids):
        self.sent.append((stream_tuple, list(dst_worker_ids)))
        return self.cost

    def send_broadcast(self, stream_tuple, dst_worker_ids):
        self.broadcasts.append((stream_tuple, list(dst_worker_ids)))
        return self.cost

    def send_offloaded(self, stream_tuple, edge_key, dst_worker_ids):
        return self.send(stream_tuple, dst_worker_ids[:1])

    def flush(self):
        self.flushes += 1
        return 0.0

    def set_batch_size(self, batch_size):
        self.batch_size = batch_size

    def close(self):
        self.closed = True


def build_executor(engine, component, kind=BOLT, config=None, routers=None,
                   control_handler=None, node_kwargs=None):
    node = LogicalNode("comp", kind, lambda: component,
                       **(node_kwargs or {}))
    transport = FakeTransport()
    executor = WorkerExecutor(
        engine=engine,
        costs=DEFAULT_COSTS,
        assignment=WorkerAssignment(worker_id=1, component="comp",
                                    task_index=0, hostname="h"),
        node=node,
        config=config or TopologyConfig(),
        transport=transport,
        routers=routers if routers is not None else {
            ("down", 0): Router(Grouping(SHUFFLE), [2, 3]),
        },
        metrics=MetricsRegistry(engine),
        rng=SeedFactory(1).rng("w"),
        topology_id="t",
        control_handler=control_handler,
    )
    return executor, transport


class Echo(Bolt):
    def execute(self, stream_tuple, collector):
        collector.emit(stream_tuple.values)


class Exploding(Bolt):
    def execute(self, stream_tuple, collector):
        raise RuntimeError("kaboom")


def test_bolt_processes_and_routes(engine):
    executor, transport = build_executor(engine, Echo())
    executor.start()
    executor.deliver(Delivery([StreamTuple(("a",)), StreamTuple(("b",))],
                              cost=1e-6))
    engine.run(until=1.0)
    assert executor.stats.processed == 2
    assert executor.stats.emitted == 2
    assert [dsts for _t, dsts in transport.sent] == [[2], [3]]  # shuffle


def test_bolt_crash_invokes_on_crash(engine):
    executor, transport = build_executor(engine, Exploding())
    crashes = []
    executor.on_crash = lambda ex, err: crashes.append(err)
    executor.start()
    executor.deliver(Delivery([StreamTuple(("x",))], cost=0))
    engine.run(until=1.0)
    assert len(crashes) == 1
    assert not executor.alive
    assert transport.closed
    assert executor.stats.crashes == 1


def test_crash_stops_processing_rest_of_batch(engine):
    class ExplodeOnSecond(Bolt):
        def __init__(self):
            self.seen = 0

        def execute(self, stream_tuple, collector):
            self.seen += 1
            if self.seen == 2:
                raise RuntimeError("second")

    bolt = ExplodeOnSecond()
    executor, _ = build_executor(engine, bolt)
    executor.on_crash = lambda ex, err: None
    executor.start()
    executor.deliver(Delivery([StreamTuple((i,)) for i in range(5)], cost=0))
    engine.run(until=1.0)
    assert bolt.seen == 2  # tuples after the crash were not processed


def test_signal_tuples_reach_on_signal(engine):
    class Stateful(Bolt):
        def __init__(self):
            self.flushed = 0

        def execute(self, stream_tuple, collector):
            pass

        def on_signal(self, signal, collector):
            self.flushed += 1

    bolt = Stateful()
    executor, _ = build_executor(engine, bolt)
    executor.start()
    executor.deliver(Delivery([signal_tuple()], cost=0))
    engine.run(until=1.0)
    assert bolt.flushed == 1
    assert executor.stats.signals == 1
    assert executor.stats.processed == 0  # signals aren't data


def test_control_handler_hook(engine):
    seen = []

    def handler(executor, stream_tuple):
        seen.append(stream_tuple.values)
        return 0.0

    executor, _ = build_executor(engine, Echo(), control_handler=handler)
    executor.start()
    executor.deliver(Delivery(
        [StreamTuple(("ROUTING", 0, {}), stream=CONTROL_STREAM)], cost=0))
    engine.run(until=1.0)
    assert seen == [("ROUTING", 0, {})]
    assert executor.stats.control_tuples == 1


def test_control_without_handler_is_counted_and_ignored(engine):
    executor, _ = build_executor(engine, Echo())
    executor.start()
    executor.deliver(Delivery(
        [StreamTuple(("X", 0, {}), stream=CONTROL_STREAM)], cost=0))
    engine.run(until=1.0)
    assert executor.stats.control_tuples == 1
    assert executor.alive


def test_spout_respects_rate_limit(engine):
    class FastSpout(Spout):
        def next_tuple(self, collector):
            collector.emit(("t",))

    config = TopologyConfig(max_spout_rate=1000, batch_size=10)
    executor, transport = build_executor(engine, FastSpout(), kind=SPOUT,
                                         config=config)
    executor.start()
    engine.run(until=5.0)
    assert executor.stats.emitted == pytest.approx(5000, rel=0.05)


def test_spout_deactivation_blocks_emission(engine):
    class FastSpout(Spout):
        def next_tuple(self, collector):
            collector.emit(("t",))

    config = TopologyConfig(max_spout_rate=1000)
    executor, _ = build_executor(engine, FastSpout(), kind=SPOUT,
                                 config=config)
    executor.active = False
    executor.start()
    engine.run(until=2.0)
    assert executor.stats.emitted == 0


def test_drain_kill_processes_backlog(engine):
    executor, transport = build_executor(engine, Echo())
    executor.start()
    engine.run(until=0.1)
    executor.deliver(Delivery([StreamTuple((i,)) for i in range(10)], cost=0))
    executor.kill(drain=True)
    engine.run(until=1.0)
    assert executor.stats.processed == 10
    assert not executor.alive
    assert transport.closed


def test_hard_kill_discards_backlog(engine):
    executor, _ = build_executor(engine, Echo())
    executor.start()
    engine.run(until=0.1)
    # First delivery is consumed immediately; the second sits in the
    # input queue and must be discarded by a hard kill.
    executor.deliver(Delivery([StreamTuple((i,)) for i in range(10)],
                              cost=10.0))
    executor.deliver(Delivery([StreamTuple((i,)) for i in range(10)],
                              cost=0.0))
    executor.kill(drain=False)
    engine.run(until=20.0)
    assert not executor.alive
    assert executor.stats.processed == 10  # second delivery dropped


def test_oom_monitor_kills_over_limit(engine):
    config = TopologyConfig(enable_oom=True)
    costs = DEFAULT_COSTS.scaled(worker_memory_limit_bytes=1000,
                                 app_compute_per_tuple=1.0)  # slow worker
    node = LogicalNode("comp", BOLT, Echo)
    executor = WorkerExecutor(
        engine=engine, costs=costs,
        assignment=WorkerAssignment(1, "comp", 0, "h"),
        node=node, config=config, transport=FakeTransport(),
        routers={}, metrics=MetricsRegistry(engine),
        rng=SeedFactory(1).rng("w"), topology_id="t",
    )
    errors = []
    executor.on_crash = lambda ex, err: errors.append(err)
    executor.start()
    big = StreamTuple(("x" * 500,))
    for _ in range(10):
        executor.deliver(Delivery([big], cost=0))
    engine.run(until=5.0)
    assert errors and isinstance(errors[0], OutOfMemoryError)
    assert not executor.alive


def test_deliver_rejected_after_death(engine):
    executor, _ = build_executor(engine, Echo())
    executor.start()
    engine.run(until=0.1)
    executor.kill()
    engine.run(until=0.2)
    assert executor.deliver(Delivery([StreamTuple(("x",))], cost=0)) is False


def test_collector_charge_adds_cost(engine):
    class Expensive(Bolt):
        def execute(self, stream_tuple, collector):
            collector.charge(0.5)

    executor, _ = build_executor(engine, Expensive())
    executor.start()
    engine.run(until=0.01)
    executor.deliver(Delivery([StreamTuple(("x",))], cost=0))
    executor.deliver(Delivery([StreamTuple(("y",))], cost=0))
    # The first tuple's 0.5 s charge delays the second delivery.
    engine.run(until=0.45)
    assert executor.stats.processed == 1
    engine.run(until=0.60)
    assert executor.stats.processed == 2


def test_charge_negative_rejected(engine):
    executor, _ = build_executor(engine, Echo())
    with pytest.raises(ValueError):
        executor.collector.charge(-1.0)

"""Tests for external fault injection and the cluster inspector."""

from repro.core import TyphoonCluster
from repro.core.apps import FaultDetector
from repro.sim import Engine
from repro.sim.faults import (
    FaultPlan,
    InjectedWorkerFault,
    crash_loop,
    host_failure_at,
    kill_worker_at,
)
from repro.streaming import StormCluster, TopologyConfig
from repro.tools import describe_cluster, describe_data_plane, describe_topology
from repro.workloads import word_count_topology


def start(cluster_class=TyphoonCluster, hosts=3, rate=1000):
    engine = Engine()
    cluster = cluster_class(engine, num_hosts=hosts, seed=0)
    config = TopologyConfig(batch_size=50, max_spout_rate=rate)
    cluster.submit(word_count_topology("wc", config, splits=2, counts=2,
                                       words_per_sentence=2))
    engine.run(until=6.0)
    return engine, cluster


def test_kill_worker_at_crashes_then_supervisor_restarts():
    engine, cluster = start()
    record = cluster.manager.topologies["wc"]
    victim = record.physical.worker_ids_for("split")[0]
    kill_worker_at(cluster, victim, when=8.0)
    engine.run(until=8.5)
    executor = cluster.executor(victim)
    assert executor is None or not executor.alive
    engine.run(until=12.0)
    executor = cluster.executor(victim)
    assert executor is not None and executor.alive  # local restart
    assert executor.stats is not None


def test_kill_worker_in_past_fires_immediately():
    engine, cluster = start()
    record = cluster.manager.topologies["wc"]
    victim = record.physical.worker_ids_for("split")[0]
    kill_worker_at(cluster, victim, when=1.0)  # already past at t=6
    engine.run(until=6.3)
    executor = cluster.executor(victim)
    assert executor is None or not executor.alive


def test_fault_plan_records_clamped_injections():
    engine, cluster = start()
    record = cluster.manager.topologies["wc"]
    victim = record.physical.worker_ids_for("split")[0]
    plan = FaultPlan(cluster).kill_worker(victim, when=2.0).arm()
    label = "kill worker %d" % victim
    assert label in plan.clamped
    engine.run(until=6.5)
    assert label in plan.fired
    executor = cluster.executor(victim)
    assert executor is None or not executor.alive


def test_crash_loop_watchdog_stops_recheck_process():
    engine, cluster = start()
    record = cluster.manager.topologies["wc"]
    victim = record.physical.worker_ids_for("split")[0]
    task = crash_loop(cluster, victim, start=8.0, until=12.0)
    engine.run(until=12.5)
    assert not task.alive  # watchdog cancelled the recheck process
    engine.run(until=20.0)  # loop over: the supervisor restart sticks
    executor = cluster.executor(victim)
    assert executor is not None and executor.alive


def test_crash_loop_keeps_worker_down():
    engine, cluster = start()
    detector = cluster.register_app(FaultDetector(cluster))
    record = cluster.manager.topologies["wc"]
    victim = record.physical.worker_ids_for("split")[0]
    healthy = record.physical.worker_ids_for("split")[1]
    task = crash_loop(cluster, victim, start=8.0, until=25.0)
    engine.run(until=25.0)
    assert detector.detections >= 1
    # The healthy split absorbed (nearly) all traffic meanwhile.
    survivor = cluster.executor(healthy)
    assert survivor.processed_meter.rate(15, 24) > 800
    engine.run(until=35.0)  # loop ended; worker may recover now


def test_host_failure_takes_down_all_workers_on_host():
    engine, cluster = start()
    record = cluster.manager.topologies["wc"]
    target_host = record.physical.workers_for("split")[0].hostname
    doomed = [a.worker_id for a in record.physical.on_host(target_host)]
    assert doomed
    host_failure_at(cluster, target_host, when=8.0)
    engine.run(until=8.4)
    for worker_id in doomed:
        executor = cluster.executors.get(worker_id)
        assert executor is None or not executor.alive


def test_fault_plan_composes_and_tracks():
    engine, cluster = start()
    record = cluster.manager.topologies["wc"]
    victim = record.physical.worker_ids_for("count")[0]
    plan = (FaultPlan(cluster)
            .kill_worker(victim, when=8.0)
            .fail_host("host-2", when=9.0)
            .arm())
    assert plan.fired == []
    engine.run(until=10.0)
    assert "kill worker %d" % victim in plan.fired
    assert "fail host host-2" in plan.fired


def test_describe_topology_renders_workers():
    engine, cluster = start()
    text = describe_topology(cluster, "wc")
    assert "topology wc" in text
    assert "split" in text and "count" in text and "source" in text
    assert "up" in text
    assert describe_topology(cluster, "ghost").startswith("topology")


def test_describe_data_plane_typhoon():
    engine, cluster = start()
    text = describe_data_plane(cluster)
    assert "switches" in text
    assert "host tunnels" in text
    assert "controller" in text
    assert "typhoon-core" in text


def test_describe_data_plane_storm_baseline():
    engine, cluster = start(cluster_class=StormCluster)
    assert "no SDN data plane" in describe_data_plane(cluster)


def test_describe_cluster_full_report():
    engine, cluster = start()
    text = describe_cluster(cluster)
    assert "topology wc" in text
    assert "switches" in text


def test_injected_fault_is_distinguishable():
    engine, cluster = start()
    record = cluster.manager.topologies["wc"]
    victim = record.physical.worker_ids_for("split")[0]
    errors = []
    agent = cluster.manager.agent_for(
        record.physical.worker(victim).hostname)
    agent.crash_listeners.append(
        lambda agent_, executor, error: errors.append(error))
    kill_worker_at(cluster, victim, when=8.0)
    engine.run(until=9.0)
    assert errors and isinstance(errors[0], InjectedWorkerFault)

"""Fig. 6 stable-update procedure under mid-update faults.

The paper's central correctness claim for dynamic reconfiguration is
that the staged update procedure loses no tuples. These tests attack
that claim directly: a *lossless* fault (a short link partition — TCP
buffers, nothing is dropped) fires at each named phase of a stateful
scale-up/scale-down, and afterwards the DeliveryLedger must show

* zero drops of any kind (the fault itself loses nothing, so any drop
  is the update procedure's fault),
* no data tuples diverted to the controller,
* zero duplicate deliveries to the stateful sink, and
* a balanced conservation identity.
"""

import pytest

from repro.core import TyphoonCluster
from repro.core.apps import FaultDetector
from repro.core.chaos import InvariantChecker
from repro.core.update import (
    PHASE_BEGIN,
    PHASE_DONE,
    PHASE_LAUNCHED,
    PHASE_REROUTED,
    PHASE_RETIRING,
    PHASE_RULES,
    PHASE_SIGNALLED,
)
from repro.sim import Engine
from repro.sim.faults import FaultPlan, set_link_down
from repro.streaming import TopologyConfig
from repro.workloads import DEDUP_SERVICE, DedupRegistry, chaos_topology

SCALE_UP_PHASES = (PHASE_BEGIN, PHASE_LAUNCHED, PHASE_RULES,
                   PHASE_SIGNALLED, PHASE_REROUTED, PHASE_DONE)
SCALE_DOWN_PHASES = (PHASE_BEGIN, PHASE_REROUTED, PHASE_SIGNALLED,
                     PHASE_RETIRING, PHASE_DONE)


def run_update_with_fault(op, phase):
    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=3, seed=0)
    cluster.register_app(FaultDetector(cluster))
    registry = DedupRegistry()
    cluster.services[DEDUP_SERVICE] = registry
    config = TopologyConfig(batch_size=50, max_spout_rate=600.0)
    cluster.submit(chaos_topology("chaos", config, relays=2, sinks=2))
    engine.run(until=3.0)

    def heal():
        set_link_down(cluster, "host-0", "host-1", False)

    def inject():
        set_link_down(cluster, "host-0", "host-1", True)
        engine.schedule(0.3, heal)

    plan = (FaultPlan(cluster)
            .at_phase("chaos", op, phase, inject,
                      description="partition at %s" % phase)
            .arm())
    cluster.set_parallelism("chaos", "state", 3 if op == "scale_up" else 1)
    engine.run(until=10.0)
    report = InvariantChecker(cluster, settle=2.0).run()
    return plan, registry, report


@pytest.mark.parametrize("phase", SCALE_UP_PHASES)
def test_scale_up_is_lossless_under_phase_fault(phase):
    plan, registry, report = run_update_with_fault("scale_up", phase)
    assert "partition at %s" % phase in plan.fired
    assert report.ok, report.render()
    assert report.conservation.drops == 0, report.conservation.render()
    assert report.conservation.controller_delivered == 0
    assert registry.tracked > 0
    assert registry.duplicates == 0


@pytest.mark.parametrize("phase", SCALE_DOWN_PHASES)
def test_scale_down_is_lossless_under_phase_fault(phase):
    plan, registry, report = run_update_with_fault("scale_down", phase)
    assert "partition at %s" % phase in plan.fired
    assert report.ok, report.render()
    assert report.conservation.drops == 0, report.conservation.render()
    assert report.conservation.controller_delivered == 0
    assert registry.tracked > 0
    assert registry.duplicates == 0

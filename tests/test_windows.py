"""Unit + property tests for the windowing helpers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.streaming.windows import (
    SlidingWindow,
    TumblingWindow,
    WindowSpan,
    WindowedCounter,
)


def test_tumbling_assignment():
    window = TumblingWindow(10.0)
    (span,) = window.assign(0.0)
    assert span == WindowSpan(0.0, 10.0)
    (span,) = window.assign(9.999)
    assert span == WindowSpan(0.0, 10.0)
    (span,) = window.assign(10.0)
    assert span == WindowSpan(10.0, 20.0)


def test_tumbling_validation():
    with pytest.raises(ValueError):
        TumblingWindow(0)


def test_sliding_assignment_overlap():
    window = SlidingWindow(size=10.0, slide=5.0)
    spans = window.assign(12.0)
    assert WindowSpan(5.0, 15.0) in spans
    assert WindowSpan(10.0, 20.0) in spans
    assert len(spans) == 2
    assert all(s.contains(12.0) for s in spans)


def test_sliding_validation():
    with pytest.raises(ValueError):
        SlidingWindow(5.0, 10.0)  # slide > size
    with pytest.raises(ValueError):
        SlidingWindow(0, 1)


def test_counter_counts_per_key_and_window():
    counter = WindowedCounter(TumblingWindow(10.0))
    counter.add("a", 1.0)
    counter.add("a", 2.0)
    counter.add("b", 3.0)
    assert counter.value("a", 5.0) == 2
    assert counter.value("b", 5.0) == 1
    assert counter.value("a", 15.0) == 0


def test_counter_closes_on_watermark():
    closed = []
    counter = WindowedCounter(
        TumblingWindow(10.0),
        on_close=lambda key, span, count: closed.append((key, span.start,
                                                         count)))
    counter.add("a", 1.0)
    counter.add("a", 9.0)
    assert closed == []
    counter.add("a", 10.5)  # watermark passes the first window's end
    assert closed == [("a", 0.0, 2)]
    assert counter.value("a", 12.0) == 1


def test_counter_flush_closes_everything():
    counter = WindowedCounter(TumblingWindow(10.0))
    counter.add("a", 1.0)
    counter.add("b", 5.0)  # same (still open) window
    flushed = counter.flush()
    assert len(flushed) == 2
    assert len(counter) == 0
    assert counter.closed_windows == 2
    assert counter.flush() == []  # idempotent when empty


def test_counter_sliding_counts_overlap():
    counter = WindowedCounter(SlidingWindow(10.0, 5.0))
    counter.add("k", 7.0)  # lands in [0,10) and [5,15)
    assert counter.value("k", 7.0) == 2  # both containing windows counted
    assert len(counter) == 2


def test_closed_windows_ordered_by_start():
    closed = []
    counter = WindowedCounter(
        TumblingWindow(5.0),
        on_close=lambda key, span, count: closed.append(span.start))
    counter.add("a", 1.0)
    counter.add("a", 6.0)
    counter.add("a", 20.0)  # closes both earlier windows
    assert closed == [0.0, 5.0]


@settings(max_examples=100)
@given(st.lists(st.tuples(st.sampled_from("abc"),
                          st.floats(min_value=0, max_value=1000)),
                max_size=60),
       st.floats(min_value=0.5, max_value=50))
def test_conservation_property(events, size):
    """Every added event is counted in exactly one closed tumbling
    window (after a final flush)."""
    totals = {}

    def on_close(key, span, count):
        totals[key] = totals.get(key, 0) + count

    counter = WindowedCounter(TumblingWindow(size), on_close=on_close)
    expected = {}
    for key, timestamp in events:
        counter.add(key, timestamp)
        expected[key] = expected.get(key, 0) + 1
    counter.flush()
    assert totals == expected


@settings(max_examples=60)
@given(st.floats(min_value=0, max_value=10_000),
       st.floats(min_value=0.5, max_value=100))
def test_tumbling_windows_partition_time(timestamp, size):
    (span,) = TumblingWindow(size).assign(timestamp)
    assert span.contains(timestamp)
    assert span.end - span.start == pytest.approx(size)

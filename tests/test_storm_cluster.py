"""Integration tests for the Storm-like baseline runtime."""

import pytest

from repro.sim import DEFAULT_COSTS, Engine
from repro.streaming import (
    ACKER_COMPONENT,
    Bolt,
    Spout,
    StormCluster,
    TopologyBuilder,
    TopologyConfig,
)
from tests.conftest import CountingSpout, ForwardingBolt, RecordingBolt, simple_chain


def run_chain(limit=500, until=10.0, config=None, sinks=1, hosts=2):
    engine = Engine()
    cluster = StormCluster(engine, num_hosts=hosts)
    cluster.submit(simple_chain(limit=limit, config=config,
                                sink_parallelism=sinks))
    engine.run(until=until)
    return engine, cluster


def test_all_tuples_delivered_exactly_once():
    engine, cluster = run_chain(limit=500)
    sink = cluster.executors_for("chain", "sink")[0]
    assert sink.stats.processed == 500
    values = sorted(v[1] for v in sink.component.received)
    assert values == list(range(500))
    assert cluster.registry.lost_tuples == 0


def test_shuffle_spreads_over_sinks():
    engine, cluster = run_chain(limit=600, sinks=3)
    sinks = cluster.executors_for("chain", "sink")
    counts = [s.stats.processed for s in sinks]
    assert sum(counts) == 600
    assert counts == [200, 200, 200]


def test_remote_and_local_both_work():
    # One host forces local; the default two hosts include a remote hop.
    _engine, local_cluster = run_chain(limit=300, hosts=1)
    sink = local_cluster.executors_for("chain", "sink")[0]
    assert sink.stats.processed == 300


def test_per_destination_serialization_counts():
    engine = Engine()
    cluster = StormCluster(engine, num_hosts=1)
    builder = TopologyBuilder("bc", TopologyConfig())
    builder.set_spout("source", lambda: CountingSpout(100), 1)
    builder.set_bolt("sink", RecordingBolt, 4).all_grouping("source")
    cluster.submit(builder.build())
    engine.run(until=10.0)
    record = cluster.manager.topologies["bc"]
    source_id = record.physical.worker_ids_for("source")[0]
    transport = cluster.executor(source_id).transport
    # Storm serializes once *per destination* (the broadcast penalty).
    assert transport.serializations == 400


def test_acking_completes_all_roots():
    config = TopologyConfig(acking=True, num_ackers=1)
    engine = Engine()
    cluster = StormCluster(engine, num_hosts=2)
    builder = TopologyBuilder("acked", config)
    builder.set_spout("source", lambda: CountingSpout(200), 1,
                      max_pending=50)
    builder.set_bolt("mid", ForwardingBolt, 1).shuffle_grouping("source")
    builder.set_bolt("sink", RecordingBolt, 1).shuffle_grouping("mid")
    cluster.submit(builder.build())
    engine.run(until=20.0)
    record = cluster.manager.topologies["acked"]
    assert ACKER_COMPONENT in record.logical.nodes
    source = cluster.executors_for("acked", "source")[0]
    acker = cluster.executors_for("acked", ACKER_COMPONENT)[0]
    assert acker.component.completed == 200
    assert len(source.pending_roots) == 0
    assert len(source.latency_dist) == 200
    assert source.latency_dist.percentile(50) > 0


def test_acking_latency_reasonable():
    config = TopologyConfig(acking=True)
    engine = Engine()
    cluster = StormCluster(engine, num_hosts=2)
    cluster.submit(simple_chain("lat", limit=300, config=config))
    engine.run(until=20.0)
    source = cluster.executors_for("lat", "source")[0]
    assert len(source.latency_dist) > 0
    # End-to-end latency should be sub-second in a quiet topology.
    assert source.latency_dist.percentile(99) < 1.0


def test_max_pending_caps_inflight():
    config = TopologyConfig(acking=True)
    engine = Engine()
    cluster = StormCluster(engine, num_hosts=1)
    builder = TopologyBuilder("capped", config)
    builder.set_spout("source", lambda: CountingSpout(None), 1,
                      max_pending=10)
    builder.set_bolt("sink", RecordingBolt, 1).shuffle_grouping("source")
    cluster.submit(builder.build())
    engine.run(until=5.0)
    source = cluster.executors_for("capped", "source")[0]
    assert len(source.pending_roots) <= 10
    assert source.stats.emitted > 0


def test_kill_topology_stops_workers():
    engine, cluster = run_chain(limit=None, until=5.0,
                                config=TopologyConfig(max_spout_rate=2000))
    source = cluster.executors_for("chain", "source")[0]
    assert source.alive
    cluster.kill_topology("chain")
    engine.run(until=6.0)
    assert not source.alive
    assert cluster.manager.topologies == {}
    assert cluster.state.read_logical("chain") is None


def test_worker_crash_restarts_locally():
    class CrashOnce(Bolt):
        crashed = {}

        def execute(self, stream_tuple, collector):
            if not CrashOnce.crashed.get("done"):
                CrashOnce.crashed["done"] = True
                raise RuntimeError("boom")

    CrashOnce.crashed = {}
    engine = Engine()
    cluster = StormCluster(engine, num_hosts=1)
    builder = TopologyBuilder("crashy", TopologyConfig(max_spout_rate=2000))
    builder.set_spout("source", lambda: CountingSpout(None), 1)
    builder.set_bolt("sink", CrashOnce, 1).shuffle_grouping("source")
    cluster.submit(builder.build())
    engine.run(until=15.0)
    agent_restarts = sum(a.restarts for a in cluster.manager.agents.values())
    assert agent_restarts == 1
    sink = cluster.executors_for("crashy", "sink")
    assert sink and sink[0].alive
    assert sink[0].stats.processed > 0


def test_heartbeat_timeout_reschedules_to_other_host():
    class AlwaysCrash(Bolt):
        def execute(self, stream_tuple, collector):
            raise RuntimeError("permanent fault")

    engine = Engine()
    cluster = StormCluster(engine, num_hosts=2)
    builder = TopologyBuilder("faulty", TopologyConfig(max_spout_rate=1000))
    builder.set_spout("source", lambda: CountingSpout(None), 1)
    builder.set_bolt("sink", AlwaysCrash, 1).shuffle_grouping("source")
    cluster.submit(builder.build())
    record = cluster.manager.topologies["faulty"]
    original_host = record.physical.workers_for("sink")[0].hostname
    engine.run(until=DEFAULT_COSTS.heartbeat_timeout + 15.0)
    assert cluster.manager.reschedules >= 1
    new_host = record.physical.workers_for("sink")[0].hostname
    assert new_host != original_host


def test_metrics_meters_register_per_worker():
    engine, cluster = run_chain(limit=100)
    record = cluster.manager.topologies["chain"]
    sink_id = record.physical.worker_ids_for("sink")[0]
    meter = cluster.metrics.meter("chain.sink.%d.processed" % sink_id)
    assert meter.total == 100

"""Latency-regression locks on the Fig. 8 forwarding path.

The traced forwarding run is fully deterministic, so these tests pin
per-hop latency budgets (means derived from the cost model with bounded
headroom), the end-to-end tail, the exact hop-sum identity against the
``trace.e2e`` metrics distribution, byte-identical trace output for a
fixed seed, and the near-zero overhead of disabled sampling. A change
that slows a hop past its budget — or perturbs the deterministic
schedule — fails here, naming the hop.
"""

from __future__ import annotations

import math
import time

import pytest

from repro.core.tracing import run_forwarding_trace
from repro.sim.trace import (
    H_BATCH,
    H_DESERIALIZE,
    H_EXECUTE,
    H_QUEUE,
    H_SERIALIZE,
    H_SWITCH,
    H_TUNNEL_RX,
    H_TUNNEL_TX,
    H_WIRE,
)

US = 1e-6
RUN_ARGS = dict(seed=0, sample_every=7, rate=50_000.0, duration=0.3,
                hosts=2)

#: Per-hop budget on the *mean* wall time of one delivered tuple's
#: segment, in seconds. Derived from the default cost model (loopback
#: latency 3us, per-tuple compute 0.1us, 1ms batch flush) with ~2-3x
#: headroom — tight enough that a hot-path regression trips the hop
#: that slowed down.
HOP_BUDGETS = {
    "emit": 0.0,                # opens the trace; never closes a segment
    H_SERIALIZE: 5 * US,
    H_BATCH: 1500 * US,         # bounded by the 1ms flush interval
    H_SWITCH: 5 * US,
    H_TUNNEL_TX: 15 * US,
    H_TUNNEL_RX: 150 * US,      # tunnel transit dominates the path
    H_WIRE: 15 * US,
    H_DESERIALIZE: 5 * US,
    H_QUEUE: 20 * US,
    H_EXECUTE: 0.5 * US,
}

E2E_MEAN_BUDGET = 120 * US      # observed: ~60.33us
E2E_P99_BUDGET = 200 * US       # observed: ~60.34us (tight distribution)


@pytest.fixture(scope="module")
def traced_run():
    return run_forwarding_trace(**RUN_ARGS)


def test_every_hop_stays_within_budget(traced_run):
    report, _tracer, _cluster = traced_run
    assert report.delivered > 100
    over = []
    for hop, _count, _wall, mean, _cost, _dominant in report.hop_rows():
        budget = HOP_BUDGETS.get(hop)
        assert budget is not None, "hop %r has no latency budget" % hop
        if mean > budget:
            over.append("%s: mean %.3fus > budget %.3fus"
                        % (hop, mean / US, budget / US))
    assert not over, "; ".join(over)


def test_forwarding_path_has_no_detour_hops(traced_run):
    """The happy path never lifts packets to the controller, replicates,
    or reassembles fragments; a new hop showing up here means the
    forwarding data path changed shape."""
    report, _tracer, _cluster = traced_run
    hops = {hop for hop, *_rest in report.hop_rows()}
    assert hops <= set(HOP_BUDGETS)


def test_execute_wall_matches_cost_model(traced_run):
    """The execute segment is pure modelled compute, so its mean equals
    ``app_compute_per_tuple`` exactly (modulo float accumulation)."""
    report, _tracer, cluster = traced_run
    stats = report.hops[H_EXECUTE]
    assert stats.mean == pytest.approx(
        cluster.costs.app_compute_per_tuple, rel=1e-9)
    assert stats.cost == pytest.approx(
        stats.count * cluster.costs.app_compute_per_tuple, rel=1e-9)


def test_end_to_end_latency_budget(traced_run):
    _report, _tracer, cluster = traced_run
    dist = cluster.metrics.distribution("trace.e2e")
    assert dist.mean() <= E2E_MEAN_BUDGET
    assert dist.percentile(99) <= E2E_P99_BUDGET


def test_hop_sum_equals_metrics_e2e_exactly(traced_run):
    """The acceptance identity: the breakdown and ``sim/metrics``
    describe the same sampled tuples with the same numbers."""
    report, tracer, cluster = traced_run
    dist = cluster.metrics.distribution("trace.e2e")
    for trace in tracer.traces.values():
        for branch, e2e in trace.delivered_branches.items():
            assert math.fsum(
                w for _h, w, _c, _e in trace.segments(branch)) == e2e
    assert sorted(report.e2e_values()) == sorted(dist.samples())
    assert report.e2e_sum == dist.total()


def test_breakdown_is_byte_identical_for_fixed_seed(traced_run):
    report, _tracer, _cluster = traced_run
    again, _tracer2, _cluster2 = run_forwarding_trace(**RUN_ARGS)
    assert again.render() == report.render()


def test_disabled_sampling_has_negligible_overhead():
    """Sampling off must record zero spans, and the run must not be
    slower than the same workload with 1:1 sampling (coarse wall-clock
    guard; the strict no-hook guarantee lives in test_trace.py)."""
    args = dict(seed=0, rate=20_000.0, duration=0.2, hosts=2)
    t0 = time.perf_counter()
    _report_on, tracer_on, _c1 = run_forwarding_trace(
        sample_every=1, **args)
    enabled_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    _report_off, tracer_off, _c2 = run_forwarding_trace(
        sample_every=0, **args)
    disabled_wall = time.perf_counter() - t0
    assert tracer_on.span_events > 0
    assert tracer_off.span_events == 0 and not tracer_off.traces
    assert tracer_off._counter == 0
    # 1:1 sampling does strictly more work; allow generous noise margin.
    assert disabled_wall <= enabled_wall * 1.25

"""Unit tests for the coordinator (ZooKeeper stand-in) and state schema."""

import pytest

from repro.coordination import (
    BadVersionError,
    Coordinator,
    GlobalState,
    NoNodeError,
    NodeExistsError,
    NotEmptyError,
)
from repro.sim import DEFAULT_COSTS, Engine


@pytest.fixture
def coordinator(engine):
    return Coordinator(engine, DEFAULT_COSTS)


def test_create_get_set(coordinator):
    coordinator.create("/a", {"x": 1})
    data, version = coordinator.get("/a")
    assert data == {"x": 1}
    assert version == 0
    new_version = coordinator.set("/a", {"x": 2})
    assert new_version == 1
    assert coordinator.get("/a")[0] == {"x": 2}


def test_create_requires_parent(coordinator):
    with pytest.raises(NoNodeError):
        coordinator.create("/a/b", 1)
    coordinator.create("/a/b", 1, make_parents=True)
    assert coordinator.exists("/a")
    assert coordinator.get("/a/b")[0] == 1


def test_duplicate_create_rejected(coordinator):
    coordinator.create("/a")
    with pytest.raises(NodeExistsError):
        coordinator.create("/a")


def test_bad_path_rejected(coordinator):
    with pytest.raises(ValueError):
        coordinator.create("no-slash")
    with pytest.raises(ValueError):
        coordinator.create("/trailing/")


def test_compare_and_set(coordinator):
    coordinator.create("/a", 1)
    coordinator.set("/a", 2, expected_version=0)
    with pytest.raises(BadVersionError):
        coordinator.set("/a", 3, expected_version=0)


def test_children_sorted(coordinator):
    coordinator.create("/top")
    for name in ("c", "a", "b"):
        coordinator.create("/top/%s" % name)
    assert coordinator.children("/top") == ["a", "b", "c"]


def test_delete_and_recursive(coordinator):
    coordinator.create("/a/b/c", 1, make_parents=True)
    with pytest.raises(NotEmptyError):
        coordinator.delete("/a")
    coordinator.delete("/a", recursive=True)
    assert not coordinator.exists("/a")
    assert not coordinator.exists("/a/b/c")


def test_ephemeral_nodes_die_with_session(coordinator):
    coordinator.start_session("worker-1")
    coordinator.create("/beats", None)
    coordinator.create("/beats/w1", "alive", ephemeral_owner="worker-1")
    assert coordinator.exists("/beats/w1")
    coordinator.expire_session("worker-1")
    assert not coordinator.exists("/beats/w1")
    assert coordinator.exists("/beats")


def test_ephemeral_requires_session(coordinator):
    with pytest.raises(Exception):
        coordinator.create("/x", 1, ephemeral_owner="ghost")


def test_data_watch_fires_after_latency(engine, coordinator):
    seen = []
    coordinator.create("/w", 0)
    coordinator.watch_data("/w", lambda p, d, v: seen.append((engine.now, d)))
    coordinator.set("/w", 1)
    assert seen == []  # not synchronous
    engine.run()
    assert len(seen) == 1
    assert seen[0][1] == 1
    assert seen[0][0] == pytest.approx(DEFAULT_COSTS.coordinator_op_latency)


def test_data_watch_sees_delete_as_none(engine, coordinator):
    seen = []
    coordinator.create("/w", 0)
    coordinator.watch_data("/w", lambda p, d, v: seen.append((d, v)))
    coordinator.delete("/w")
    engine.run()
    assert seen == [(None, None)]


def test_child_watch(engine, coordinator):
    seen = []
    coordinator.create("/parent")
    coordinator.watch_children("/parent", lambda p, names: seen.append(names))
    coordinator.create("/parent/a")
    coordinator.create("/parent/b")
    coordinator.delete("/parent/a")
    engine.run()
    assert seen == [["a"], ["a", "b"], ["b"]]


def test_watch_unsubscribe(engine, coordinator):
    seen = []
    coordinator.create("/w", 0)
    unsubscribe = coordinator.watch_data("/w",
                                         lambda p, d, v: seen.append(d))
    coordinator.set("/w", 1)
    unsubscribe()
    coordinator.set("/w", 2)
    engine.run()
    assert seen == [1]


def test_ensure_creates_or_overwrites(coordinator):
    state = coordinator
    state.ensure("/deep/path/node", "v1")
    assert state.get("/deep/path/node")[0] == "v1"
    state.ensure("/deep/path/node", "v2")
    assert state.get("/deep/path/node")[0] == "v2"


# -- GlobalState schema (Table 1) -------------------------------------------------


def test_global_state_topology_roundtrip(engine, coordinator):
    state = GlobalState(coordinator)
    assert state.list_topologies() == []
    state.write_logical("wc", {"nodes": ["a"]})
    state.write_physical("wc", {"workers": [1, 2]})
    assert state.read_logical("wc") == {"nodes": ["a"]}
    assert state.read_physical("wc") == {"workers": [1, 2]}
    assert state.list_topologies() == ["wc"]
    state.remove_topology("wc")
    assert state.list_topologies() == []
    assert state.read_logical("wc") is None


def test_global_state_agents(engine, coordinator):
    state = GlobalState(coordinator)
    state.register_agent("host-0", {"ports": 4})
    state.register_agent("host-1", {"ports": 2})
    assert state.list_agents() == ["host-0", "host-1"]
    assert state.agent_info("host-0") == {"ports": 4}


def test_global_state_beats(engine, coordinator):
    state = GlobalState(coordinator)
    state.write_beat("wc", 3, {"time": 1.0})
    assert state.read_beat("wc", 3) == {"time": 1.0}
    state.write_beat("wc", 3, {"time": 2.0})
    assert state.read_beat("wc", 3) == {"time": 2.0}
    state.clear_beat("wc", 3)
    assert state.read_beat("wc", 3) is None
    state.clear_beat("wc", 3)  # idempotent


# -- sequence nodes (election building block) --------------------------------


def test_sequence_nodes_get_zero_padded_monotonic_names(coordinator):
    coordinator.create("/elect")
    first = coordinator.create("/elect/m-", data="a", sequence=True)
    second = coordinator.create("/elect/m-", data="b", sequence=True)
    assert first == "/elect/m-0000000000"
    assert second == "/elect/m-0000000001"
    assert coordinator.children("/elect") == ["m-0000000000", "m-0000000001"]
    assert coordinator.get_data(first) == "a"
    # One global counter: names stay totally ordered across parents.
    coordinator.create("/other")
    third = coordinator.create("/other/n-", sequence=True)
    assert third == "/other/n-0000000002"


def test_sequence_ephemerals_die_with_session(coordinator):
    coordinator.create("/elect")
    coordinator.start_session("s")
    path = coordinator.create("/elect/m-", data="s", sequence=True,
                              ephemeral_owner="s")
    assert coordinator.exists(path)
    coordinator.expire_session("s")
    assert not coordinator.exists(path)
    # The counter does not rewind: the next member sorts after the dead one.
    replacement = coordinator.create("/elect/m-", sequence=True)
    assert replacement > path


# -- expire_session watch batching -------------------------------------------


def test_expire_session_delivers_one_child_watch_per_parent(engine,
                                                            coordinator):
    coordinator.create("/a")
    coordinator.create("/b")
    coordinator.start_session("s")
    coordinator.create("/a/x1", ephemeral_owner="s")
    coordinator.create("/a/x2", ephemeral_owner="s")
    coordinator.create("/b/y", ephemeral_owner="s")
    coordinator.create("/a/keep")
    engine.run()
    events = []
    coordinator.watch_children("/a", lambda p, names: events.append((p, names)))
    coordinator.watch_children("/b", lambda p, names: events.append((p, names)))
    coordinator.expire_session("s")
    engine.run()
    # One level-triggered delivery per affected parent, sorted by path,
    # each reflecting the *final* membership — not one per deleted node.
    assert events == [("/a", ["keep"]), ("/b", [])]


def test_expire_session_fires_data_watch_deletes_for_subtrees(engine,
                                                              coordinator):
    coordinator.start_session("s")
    coordinator.create("/job", ephemeral_owner="s")
    coordinator.create("/job/child", data=1)
    engine.run()
    seen = []
    coordinator.watch_data("/job", lambda p, d, v: seen.append(("/job", d)))
    coordinator.watch_data("/job/child",
                           lambda p, d, v: seen.append(("/job/child", d)))
    coordinator.expire_session("s")
    assert not coordinator.exists("/job/child")  # swept with its parent
    engine.run()
    assert seen == [("/job", None), ("/job/child", None)]


def test_expire_session_is_idempotent_and_unknown_safe(coordinator):
    coordinator.expire_session("never-started")
    coordinator.start_session("s")
    coordinator.expire_session("s")
    coordinator.expire_session("s")
    assert not coordinator.session_active("s")


# -- stats snapshot -----------------------------------------------------------


def test_store_stats_snapshot(coordinator):
    base = coordinator.stats()
    assert base["znodes"] == 1  # the root
    assert base["sessions"] == 0
    coordinator.start_session("s")
    coordinator.create("/a", data=1)
    coordinator.create("/a/e", ephemeral_owner="s")
    coordinator.watch_data("/a", lambda p, d, v: None)
    coordinator.watch_children("/a", lambda p, names: None)
    coordinator.get("/a")
    stats = coordinator.stats()
    assert stats["znodes"] == 3
    assert stats["ephemerals"] == 1
    assert stats["sessions"] == 1
    assert stats["data_watches"] == 1
    assert stats["child_watches"] == 1
    assert stats["writes"] == base["writes"] + 2
    assert stats["reads"] == base["reads"] + 1
    coordinator.expire_session("s")
    assert coordinator.stats()["ephemerals"] == 0

"""Unit tests for the coordinator (ZooKeeper stand-in) and state schema."""

import pytest

from repro.coordination import (
    BadVersionError,
    Coordinator,
    GlobalState,
    NoNodeError,
    NodeExistsError,
    NotEmptyError,
)
from repro.sim import DEFAULT_COSTS, Engine


@pytest.fixture
def coordinator(engine):
    return Coordinator(engine, DEFAULT_COSTS)


def test_create_get_set(coordinator):
    coordinator.create("/a", {"x": 1})
    data, version = coordinator.get("/a")
    assert data == {"x": 1}
    assert version == 0
    new_version = coordinator.set("/a", {"x": 2})
    assert new_version == 1
    assert coordinator.get("/a")[0] == {"x": 2}


def test_create_requires_parent(coordinator):
    with pytest.raises(NoNodeError):
        coordinator.create("/a/b", 1)
    coordinator.create("/a/b", 1, make_parents=True)
    assert coordinator.exists("/a")
    assert coordinator.get("/a/b")[0] == 1


def test_duplicate_create_rejected(coordinator):
    coordinator.create("/a")
    with pytest.raises(NodeExistsError):
        coordinator.create("/a")


def test_bad_path_rejected(coordinator):
    with pytest.raises(ValueError):
        coordinator.create("no-slash")
    with pytest.raises(ValueError):
        coordinator.create("/trailing/")


def test_compare_and_set(coordinator):
    coordinator.create("/a", 1)
    coordinator.set("/a", 2, expected_version=0)
    with pytest.raises(BadVersionError):
        coordinator.set("/a", 3, expected_version=0)


def test_children_sorted(coordinator):
    coordinator.create("/top")
    for name in ("c", "a", "b"):
        coordinator.create("/top/%s" % name)
    assert coordinator.children("/top") == ["a", "b", "c"]


def test_delete_and_recursive(coordinator):
    coordinator.create("/a/b/c", 1, make_parents=True)
    with pytest.raises(NotEmptyError):
        coordinator.delete("/a")
    coordinator.delete("/a", recursive=True)
    assert not coordinator.exists("/a")
    assert not coordinator.exists("/a/b/c")


def test_ephemeral_nodes_die_with_session(coordinator):
    coordinator.start_session("worker-1")
    coordinator.create("/beats", None)
    coordinator.create("/beats/w1", "alive", ephemeral_owner="worker-1")
    assert coordinator.exists("/beats/w1")
    coordinator.expire_session("worker-1")
    assert not coordinator.exists("/beats/w1")
    assert coordinator.exists("/beats")


def test_ephemeral_requires_session(coordinator):
    with pytest.raises(Exception):
        coordinator.create("/x", 1, ephemeral_owner="ghost")


def test_data_watch_fires_after_latency(engine, coordinator):
    seen = []
    coordinator.create("/w", 0)
    coordinator.watch_data("/w", lambda p, d, v: seen.append((engine.now, d)))
    coordinator.set("/w", 1)
    assert seen == []  # not synchronous
    engine.run()
    assert len(seen) == 1
    assert seen[0][1] == 1
    assert seen[0][0] == pytest.approx(DEFAULT_COSTS.coordinator_op_latency)


def test_data_watch_sees_delete_as_none(engine, coordinator):
    seen = []
    coordinator.create("/w", 0)
    coordinator.watch_data("/w", lambda p, d, v: seen.append((d, v)))
    coordinator.delete("/w")
    engine.run()
    assert seen == [(None, None)]


def test_child_watch(engine, coordinator):
    seen = []
    coordinator.create("/parent")
    coordinator.watch_children("/parent", lambda p, names: seen.append(names))
    coordinator.create("/parent/a")
    coordinator.create("/parent/b")
    coordinator.delete("/parent/a")
    engine.run()
    assert seen == [["a"], ["a", "b"], ["b"]]


def test_watch_unsubscribe(engine, coordinator):
    seen = []
    coordinator.create("/w", 0)
    unsubscribe = coordinator.watch_data("/w",
                                         lambda p, d, v: seen.append(d))
    coordinator.set("/w", 1)
    unsubscribe()
    coordinator.set("/w", 2)
    engine.run()
    assert seen == [1]


def test_ensure_creates_or_overwrites(coordinator):
    state = coordinator
    state.ensure("/deep/path/node", "v1")
    assert state.get("/deep/path/node")[0] == "v1"
    state.ensure("/deep/path/node", "v2")
    assert state.get("/deep/path/node")[0] == "v2"


# -- GlobalState schema (Table 1) -------------------------------------------------


def test_global_state_topology_roundtrip(engine, coordinator):
    state = GlobalState(coordinator)
    assert state.list_topologies() == []
    state.write_logical("wc", {"nodes": ["a"]})
    state.write_physical("wc", {"workers": [1, 2]})
    assert state.read_logical("wc") == {"nodes": ["a"]}
    assert state.read_physical("wc") == {"workers": [1, 2]}
    assert state.list_topologies() == ["wc"]
    state.remove_topology("wc")
    assert state.list_topologies() == []
    assert state.read_logical("wc") is None


def test_global_state_agents(engine, coordinator):
    state = GlobalState(coordinator)
    state.register_agent("host-0", {"ports": 4})
    state.register_agent("host-1", {"ports": 2})
    assert state.list_agents() == ["host-0", "host-1"]
    assert state.agent_info("host-0") == {"ports": 4}


def test_global_state_beats(engine, coordinator):
    state = GlobalState(coordinator)
    state.write_beat("wc", 3, {"time": 1.0})
    assert state.read_beat("wc", 3) == {"time": 1.0}
    state.write_beat("wc", 3, {"time": 2.0})
    assert state.read_beat("wc", 3) == {"time": 2.0}
    state.clear_beat("wc", 3)
    assert state.read_beat("wc", 3) is None
    state.clear_beat("wc", 3)  # idempotent

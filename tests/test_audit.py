"""Tests for the delivery-accounting (loss-audit) layer.

Unit tests for the :class:`DeliveryLedger` itself, plus end-to-end
conservation checks: a healthy run, the Fig. 10 fault scenario, Storm's
lossy baseline, and Fig. 6-style dynamic reconfiguration — all must
balance the identity ``sent + injected + replicated == delivered +
controller_delivered + drops + buffered + pending_reassembly``.
"""

import io

import pytest

from repro.cli import main
from repro.core import TyphoonCluster
from repro.core.audit import (
    conservation_report,
    typhoon_frame_tuples,
    verify_conservation,
)
from repro.core.rest import RestApi
from repro.net import EthernetFrame, TYPHOON_ETHERTYPE, WorkerAddress
from repro.sim import Engine
from repro.sim.audit import (
    ConservationError,
    ConservationReport,
    DeliveryLedger,
    LAYER_REASSEMBLY,
    LAYER_TRANSPORT,
    R_CLOSED_PORT,
    R_REASSEMBLY_GAP,
    UNKNOWN_SCOPE,
)
from repro.streaming import Grouping, StormCluster, TopologyConfig
from repro.streaming.storm import storm_batch_tuples
from repro.streaming.topology import Bolt
from repro.workloads import word_count_topology


# -- ledger unit tests -----------------------------------------------------


def test_ledger_counts_and_drop_rows():
    ledger = DeliveryLedger()
    ledger.name_scope(1, "wc")
    ledger.record_sent(1, 10)
    ledger.record_delivered(1, 7)
    ledger.record_drop(1, LAYER_TRANSPORT, R_CLOSED_PORT, 2)
    ledger.record_drop(1, LAYER_REASSEMBLY, R_REASSEMBLY_GAP)
    assert ledger.total_sent() == 10
    assert ledger.total_delivered() == 7
    assert ledger.total_drops() == 3
    assert ledger.total_drops(scope=2) == 0
    assert ledger.drop_rows() == [
        ("wc", LAYER_REASSEMBLY, R_REASSEMBLY_GAP, 1),
        ("wc", LAYER_TRANSPORT, R_CLOSED_PORT, 2),
    ]
    assert ledger.drops_by_reason() == {
        (LAYER_TRANSPORT, R_CLOSED_PORT): 2,
        (LAYER_REASSEMBLY, R_REASSEMBLY_GAP): 1,
    }
    assert ledger.scopes() == [1]
    assert ledger.scope_name(UNKNOWN_SCOPE) == "(unknown)"
    assert ledger.scope_name(9) == "app-9"


def test_ledger_zero_count_drop_not_recorded():
    ledger = DeliveryLedger()
    ledger.record_drop(1, LAYER_TRANSPORT, R_CLOSED_PORT, 0)
    assert ledger.drops == {}


def test_frame_reporting_without_inspector_is_unattributable():
    ledger = DeliveryLedger()
    ledger.record_frame_drop(LAYER_TRANSPORT, R_CLOSED_PORT, object())
    assert ledger.total_drops() == 0
    assert ledger.unattributable_frames == 1


def test_failing_inspector_counts_unattributable_not_raises():
    def broken(_frame):
        raise RuntimeError("boom")

    ledger = DeliveryLedger(inspector=broken)
    ledger.record_frame_drop(LAYER_TRANSPORT, R_CLOSED_PORT, b"junk")
    assert ledger.unattributable_frames == 1


def test_typhoon_inspector_attributes_frames():
    from repro.core.packets import pack_tuples
    from repro.net.addresses import CONTROLLER_ADDRESS

    payloads, _ = pack_tuples([b"aa", b"bb"], mtu=1500)
    frame = EthernetFrame(dst=WorkerAddress(3, 7), src=WorkerAddress(3, 1),
                          ethertype=TYPHOON_ETHERTYPE, payload=payloads[0])
    assert typhoon_frame_tuples(frame) == (3, 2)
    # Packed bytes (the form tunnels carry) work too.
    assert typhoon_frame_tuples(frame.pack()) == (3, 2)
    # Control frames from the controller belong to the *destination* app.
    control = EthernetFrame(dst=WorkerAddress(5, 2), src=CONTROLLER_ADDRESS,
                            ethertype=TYPHOON_ETHERTYPE, payload=payloads[0])
    assert typhoon_frame_tuples(control) == (5, 2)
    assert typhoon_frame_tuples("not a frame") is None


def test_typhoon_inspector_fragment_head_rule():
    from repro.core.packets import pack_tuples, unpack_payload

    payloads, _ = pack_tuples([b"z" * 4000], mtu=1500)
    assert len(payloads) > 1
    frames = [EthernetFrame(dst=WorkerAddress(1, 2), src=WorkerAddress(1, 1),
                            ethertype=TYPHOON_ETHERTYPE, payload=p)
              for p in payloads]
    counts = [typhoon_frame_tuples(f)[1] for f in frames]
    # The head fragment carries the tuple; trailing fragments are free.
    assert counts[0] == 1
    assert all(c == 0 for c in counts[1:])


def test_storm_inspector():
    from repro.streaming.storm import _WireBatch

    batch = _WireBatch([(None, 8), (None, 8), (None, 8)], 64, scope=9)
    assert storm_batch_tuples(batch) == (9, 3)
    assert storm_batch_tuples("junk") is None


def test_conservation_report_identity_and_render():
    report = ConservationReport(sent=10, injected=2, replicated=3,
                                delivered=11, controller_delivered=1,
                                drops=2, buffered=1, pending_reassembly=0,
                                drop_rows=[("wc", "transport",
                                            "closed-port", 2)])
    assert report.inputs == 15
    assert report.accounted == 15
    assert report.unattributed == 0
    assert report.ok
    text = report.render()
    assert "closed-port" in text
    assert "OK" in text
    assert report.to_dict()["ok"] is True

    leaky = ConservationReport(sent=10, delivered=8)
    assert leaky.unattributed == 2
    assert not leaky.ok
    assert "LEAK" in leaky.render()
    error = ConservationError(leaky)
    assert leaky.render() in str(error)


# -- end-to-end conservation ----------------------------------------------


def _run_wordcount(cluster_class, engine, duration, fault_time=None,
                   hosts=2, rate=800.0):
    cluster = cluster_class(engine, num_hosts=hosts, seed=0)
    config = TopologyConfig(batch_size=50, max_spout_rate=rate)
    cluster.submit(word_count_topology("wc", config, splits=2, counts=2,
                                       words_per_sentence=2,
                                       fault_time=fault_time))
    engine.run(until=duration)
    return cluster


def test_typhoon_healthy_run_conserves_tuples(engine):
    cluster = _run_wordcount(TyphoonCluster, engine, duration=8.0)
    report = verify_conservation(cluster)  # strict: raises on a leak
    assert report.ok
    assert report.sent > 0
    assert report.delivered >= report.sent  # broadcast control replication


def test_typhoon_fault_run_conserves_tuples(engine):
    cluster = _run_wordcount(TyphoonCluster, engine, duration=12.0,
                             fault_time=5.0)
    report = verify_conservation(cluster)
    assert report.ok
    assert report.unattributed == 0


def test_storm_fault_drops_are_attributed(engine):
    cluster = _run_wordcount(StormCluster, engine, duration=12.0,
                             fault_time=5.0)
    report = verify_conservation(cluster)
    assert report.ok
    # The baseline loses tuples to dead-worker routing, but every loss
    # is itemized — at least everything the registry itself counted
    # (the ledger additionally sees channel/close-time drops).
    assert cluster.registry.lost_tuples > 0
    assert report.drops >= cluster.registry.lost_tuples


class _TapBolt(Bolt):
    def execute(self, stream_tuple, collector):
        pass


def test_dynamic_attach_detach_conserves_tuples(engine):
    """Fig. 6 reconfigurations (add/remove a stateful component and
    rescale) must not leak tuples: every in-flight tuple at each rewiring
    is delivered or shows up as an attributed drop."""
    cluster = _run_wordcount(TyphoonCluster, engine, duration=8.0)
    cluster.attach_component("wc", "tap", _TapBolt, subscribe_to="split",
                             grouping=Grouping("fields", (0,)),
                             parallelism=2, stateful=True)
    engine.run(until=14.0)
    cluster.set_parallelism("wc", "count", 3)
    engine.run(until=20.0)
    request = cluster.detach_component("wc", "tap")
    engine.run(until=26.0)
    assert request.triggered and not request.failed
    report = verify_conservation(cluster)
    assert report.ok


# -- surfacing: REST + CLI -------------------------------------------------


def test_rest_audit_route(engine):
    cluster = _run_wordcount(TyphoonCluster, engine, duration=6.0)
    api = RestApi(cluster)
    status, payload = api.handle("GET", "/audit")
    assert status == 200
    assert payload["sent"] > 0
    assert set(payload) >= {"sent", "delivered", "drops", "unattributed",
                            "ok", "drop_rows"}
    # Quiesced via the library, the same view must balance.
    report = verify_conservation(cluster)
    status, payload = api.handle("GET", "/audit")
    assert payload["unattributed"] == 0
    assert payload["ok"] is True
    assert payload == report.to_dict()


def test_cli_audit_typhoon():
    out = io.StringIO()
    code = main(["audit", "--rate", "400", "--duration", "6",
                 "--hosts", "2", "--splits", "1", "--counts", "1"], out=out)
    text = out.getvalue()
    assert code == 0
    assert "system: typhoon" in text
    assert "delivery conservation audit" in text
    assert "unattributed loss=0 -> OK" in text


def test_cli_audit_storm_with_fault():
    out = io.StringIO()
    code = main(["audit", "--system", "storm", "--rate", "400",
                 "--duration", "10", "--hosts", "2", "--fault-time", "4"],
                out=out)
    text = out.getvalue()
    assert code == 0  # lossy but fully attributed
    assert "system: storm" in text
    assert "unresolved-worker" in text
    assert "unattributed loss=0 -> OK" in text


def test_stats_monitor_report_includes_drop_section(engine):
    from repro.core.apps import StatsMonitor

    cluster = _run_wordcount(TyphoonCluster, engine, duration=6.0)
    monitor = cluster.register_app(StatsMonitor(cluster, "wc"))
    engine.run(until=12.0)
    text = monitor.report()
    assert "tuple drops (delivery ledger)" in text


def test_mid_get_worker_kill_conserves_tuples(engine):
    """Regression for the interrupted-getter leak: killing a worker
    interrupts its executor processes mid-``Store.get``; the stale get
    gates used to stay armed and swallow the next enqueued tuples, which
    surfaced here as unattributed loss. With gate defusal every tuple is
    delivered or shows up as an attributed drop."""
    from repro.sim.faults import kill_worker_at

    cluster = TyphoonCluster(engine, num_hosts=2, seed=0)
    config = TopologyConfig(batch_size=50, max_spout_rate=800.0)
    physical = cluster.submit(
        word_count_topology("wc", config, splits=2, counts=2,
                            words_per_sentence=2))
    [victim_id, _other] = physical.worker_ids_for("count")
    kill_worker_at(cluster, victim_id, when=3.0,
                   reason="mid-get kill regression")
    engine.run(until=10.0)
    report = verify_conservation(cluster)  # strict: raises on a leak
    assert report.ok
    assert report.unattributed == 0
    assert report.sent > 0

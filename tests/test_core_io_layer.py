"""Unit tests for the Typhoon I/O layer and fabric."""

import pytest

from repro.core.io_layer import HostFabric, TyphoonFabric, TyphoonTransport
from repro.net import BROADCAST, Cluster, EthernetFrame, TYPHOON_ETHERTYPE, WorkerAddress
from repro.sdn import ADD, FlowMod, Match, Output, SetTunnelDst
from repro.sim import DEFAULT_COSTS, Engine
from repro.sim.audit import DeliveryLedger
from repro.streaming import StreamTuple


@pytest.fixture
def fabric(engine):
    return TyphoonFabric(engine, DEFAULT_COSTS, Cluster.of_size(2))


def make_transport(engine, fabric, worker_id, host="host-0", batch=10):
    transport = TyphoonTransport(engine, DEFAULT_COSTS, worker_id, app_id=1,
                                 host_fabric=fabric.host(host),
                                 batch_size=batch)
    received = []
    transport.deliver = lambda delivery: received.append(delivery) or True
    transport.attach()
    return transport, received


def install_unicast(fabric, host, src_port, src_id, dst_id, dst_port):
    switch = fabric.host(host).switch
    switch.handle_message(FlowMod(ADD, Match(
        in_port=src_port, dl_src=WorkerAddress(1, src_id),
        dl_dst=WorkerAddress(1, dst_id), ether_type=TYPHOON_ETHERTYPE,
    ), (Output(dst_port),)))


def test_fabric_builds_full_tunnel_mesh(engine):
    fabric = TyphoonFabric(engine, DEFAULT_COSTS, Cluster.of_size(3))
    for name, host in fabric.hosts.items():
        assert set(host.tunnels) == {other for other in fabric.hosts
                                     if other != name}
    assert len(fabric.switches()) == 3


def test_local_send_and_receive_roundtrip(engine, fabric):
    sender, _ = make_transport(engine, fabric, 1, batch=2)
    receiver, received = make_transport(engine, fabric, 2)
    install_unicast(fabric, "host-0", sender.port_no, 1, 2, receiver.port_no)
    engine.run(until=0.01)
    cost = sender.send(StreamTuple(("hello", 1)), [2])
    cost += sender.send(StreamTuple(("world", 2)), [2])  # fills batch of 2
    assert cost > 0
    engine.run(until=0.05)
    assert len(received) == 1
    tuples = received[0].tuples
    assert [t.values for t in tuples] == [("hello", 1), ("world", 2)]
    assert received[0].cost > 0


def test_remote_send_via_tunnel(engine, fabric):
    sender, _ = make_transport(engine, fabric, 1, host="host-0", batch=1)
    receiver, received = make_transport(engine, fabric, 2, host="host-1")
    switch0 = fabric.host("host-0").switch
    switch0.handle_message(FlowMod(ADD, Match(
        in_port=sender.port_no, dl_src=WorkerAddress(1, 1),
        dl_dst=WorkerAddress(1, 2), ether_type=TYPHOON_ETHERTYPE,
    ), (SetTunnelDst("host-1"), Output(fabric.host("host-0").tunnel_port))))
    switch1 = fabric.host("host-1").switch
    switch1.handle_message(FlowMod(ADD, Match(
        in_port=fabric.host("host-1").tunnel_port,
        dl_src=WorkerAddress(1, 1), dl_dst=WorkerAddress(1, 2),
    ), (Output(receiver.port_no),)))
    engine.run(until=0.01)
    sender.send(StreamTuple(("remote",)), [2])
    engine.run(until=0.05)
    assert len(received) == 1
    assert received[0].tuples[0].values == ("remote",)
    assert fabric.host("host-0").tunnels["host-1"].total_bytes > 0


def test_serialize_once_for_multiple_destinations(engine, fabric):
    sender, _ = make_transport(engine, fabric, 1, batch=100)
    sender.send(StreamTuple(("multi",)), [2, 3, 4])
    assert sender.serializations == 1
    assert sender.tuples_sent == 3  # one buffered copy per destination


def test_broadcast_uses_broadcast_address(engine, fabric):
    sender, _ = make_transport(engine, fabric, 1, batch=1)
    receivers = []
    for worker_id in (2, 3):
        _transport, received = make_transport(engine, fabric, worker_id)
        receivers.append(received)
    switch = fabric.host("host-0").switch
    ports = [switch.port_by_name("w2").number,
             switch.port_by_name("w3").number]
    switch.handle_message(FlowMod(ADD, Match(
        in_port=sender.port_no, dl_dst=BROADCAST,
        ether_type=TYPHOON_ETHERTYPE,
    ), tuple(Output(p) for p in ports)))
    engine.run(until=0.01)
    sender.send_broadcast(StreamTuple(("fanout",)), [2, 3])
    engine.run(until=0.05)
    assert sender.serializations == 1
    assert all(len(received) == 1 for received in receivers)


def test_large_tuple_segmentation_end_to_end(engine, fabric):
    sender, _ = make_transport(engine, fabric, 1, batch=1)
    receiver, received = make_transport(engine, fabric, 2)
    install_unicast(fabric, "host-0", sender.port_no, 1, 2, receiver.port_no)
    engine.run(until=0.01)
    payload = "y" * 30000  # far beyond the MTU
    sender.send(StreamTuple((payload,)), [2])
    assert sender.frames_sent > 1  # fragmented
    engine.run(until=0.05)
    assert len(received) == 1
    assert received[0].tuples[0].values == (payload,)


def test_flush_sends_partial_batches(engine, fabric):
    sender, _ = make_transport(engine, fabric, 1, batch=1000)
    receiver, received = make_transport(engine, fabric, 2)
    install_unicast(fabric, "host-0", sender.port_no, 1, 2, receiver.port_no)
    engine.run(until=0.01)
    sender.send(StreamTuple(("partial",)), [2])
    assert sender.frames_sent == 0  # buffered
    cost = sender.flush()
    assert cost > 0
    assert sender.frames_sent == 1
    engine.run(until=0.05)
    assert len(received) == 1


def test_close_removes_port_and_drops_sends(engine, fabric):
    sender, _ = make_transport(engine, fabric, 1, batch=1)
    port = sender.port_no
    sender.close()
    assert port not in fabric.host("host-0").switch.ports
    assert sender.send(StreamTuple(("late",)), [2]) == 0.0
    sender.close()  # idempotent


def test_send_to_controller_flushes_immediately(engine, fabric):
    events = []
    fabric.host("host-0").switch.connect_controller(events.append)
    sender, _ = make_transport(engine, fabric, 1, batch=1000)
    from repro.core import rules
    match, actions = rules.worker_to_controller(sender.port_no)
    fabric.host("host-0").switch.handle_message(
        FlowMod(ADD, match, actions, priority=rules.PRIORITY_CONTROL))
    engine.run(until=0.01)
    sender.send_to_controller(StreamTuple(("stats", 1)))
    engine.run(until=0.05)
    packet_ins = [e for e in events if type(e).__name__ == "PacketIn"]
    assert len(packet_ins) == 1


def test_tunnel_to_unknown_peer_counts_drop(engine, fabric):
    host = fabric.host("host-0")
    frame = EthernetFrame(WorkerAddress(1, 2), WorkerAddress(1, 1),
                          TYPHOON_ETHERTYPE, b"x")
    host._tunnel_sink(frame, None)
    host._tunnel_sink(frame, "no-such-host")
    assert host.tunnel_drops == 2


def test_set_batch_size_floor(engine, fabric):
    sender, _ = make_transport(engine, fabric, 1)
    sender.set_batch_size(0)
    assert sender.batch_size == 1
    sender.set_batch_size(64)
    assert sender.batch_size == 64


def _fragment_frames(src, dst, data, mtu=1500):
    from repro.core.packets import pack_tuples

    payloads, _ = pack_tuples([data], mtu)
    assert len(payloads) > 1
    return [EthernetFrame(dst=dst, src=src, ethertype=TYPHOON_ETHERTYPE,
                          payload=payload) for payload in payloads]


def test_cross_topology_fragments_do_not_collide(engine, fabric):
    """Same worker id, same frag ids, *different applications*: the
    reassembler must keep the two streams apart (it is keyed by
    (app_id, worker_id), not worker id alone)."""
    from repro.streaming.serialize import encode_tuple

    receiver, received = make_transport(engine, fabric, 9)
    data_a = encode_tuple(StreamTuple(("a" * 4000,)))
    data_b = encode_tuple(StreamTuple(("b" * 4000,)))
    frames_a = _fragment_frames(WorkerAddress(1, 5), receiver.address, data_a)
    frames_b = _fragment_frames(WorkerAddress(2, 5), receiver.address, data_b)
    # Interleave fragment-for-fragment: identical frag_id=0 on both.
    for frame_a, frame_b in zip(frames_a, frames_b):
        receiver._on_frame(frame_a, None)
        receiver._on_frame(frame_b, None)
    assert len(received) == 2
    values = sorted(d.tuples[0].values[0][0] for d in received)
    assert values == ["a", "b"]
    assert receiver._reassembler.dropped == 0


def test_reassembly_eviction_is_counted_in_ledger(engine):
    from repro.sim.audit import R_REASSEMBLY_EVICTED
    from repro.streaming.serialize import encode_tuple

    ledger = DeliveryLedger()
    fabric = TyphoonFabric(engine, DEFAULT_COSTS, Cluster.of_size(1),
                           ledger=ledger)
    receiver, received = make_transport(engine, fabric, 9)
    receiver._reassembler.max_pending = 2
    # Three concurrent partial tuples from three different apps: starting
    # the third must evict only the oldest (app 1), not wipe the table.
    heads = {}
    for app_id in (1, 2, 3):
        data = encode_tuple(StreamTuple(("z" * 4000, app_id)))
        heads[app_id] = _fragment_frames(WorkerAddress(app_id, 5),
                                         receiver.address, data)
    for app_id in (1, 2, 3):
        receiver._on_frame(heads[app_id][0], None)
    assert receiver._reassembler.evictions == 1
    assert receiver._reassembler.pending_count == 2
    assert ledger.drops == {(1, "reassembly", R_REASSEMBLY_EVICTED): 1}
    # The survivors still complete.
    for app_id in (2, 3):
        for frame in heads[app_id][1:]:
            receiver._on_frame(frame, None)
    assert len(received) == 2
    assert receiver.pending_reassembly == 0


def test_offloaded_round_robin_is_fair_per_edge(engine, fabric):
    """Two offloaded edges sharing one transport must each see an even
    round robin — a shared counter would skew both distributions."""
    sender, _ = make_transport(engine, fabric, 1, batch=1000)
    destinations = [2, 3]
    picks = {"edge-a": [], "edge-b": []}
    original_send = sender.send

    def spy(stream_tuple, dst_worker_ids):
        spy.last = list(dst_worker_ids)
        return original_send(stream_tuple, dst_worker_ids)

    sender.send = spy
    for i in range(4):
        # Interleave the two edges the way a worker feeding two
        # downstream components would.
        sender.send_offloaded(StreamTuple(("t", i)), "edge-a", destinations)
        picks["edge-a"].append(spy.last[0])
        sender.send_offloaded(StreamTuple(("t", i)), "edge-b", destinations)
        picks["edge-b"].append(spy.last[0])
    assert picks["edge-a"] == [2, 3, 2, 3]
    assert picks["edge-b"] == [2, 3, 2, 3]


def test_detached_live_transport_holds_buffer(engine, fabric):
    """A live transport that is (temporarily) not attached to a switch
    port must *hold* buffered tuples for the retry after re-attach —
    only a closed transport may discard."""
    sender, _ = make_transport(engine, fabric, 1, batch=1000)
    receiver, received = make_transport(engine, fabric, 2)
    sender.send(StreamTuple(("early",)), [2])
    # Detach (fault/migration window) without closing.
    sender.switch.remove_port(sender.port_no)
    sender.port_no = None
    assert sender.flush() == 0.0
    assert sender.pending_tuples() == 1
    assert sender.dropped_after_close == 0
    # Re-attach: the held batch goes out on the next flush.
    sender.attach()
    install_unicast(fabric, "host-0", sender.port_no, 1, 2, receiver.port_no)
    engine.run(until=0.01)
    assert sender.flush() > 0
    engine.run(until=0.05)
    assert len(received) == 1
    assert received[0].tuples[0].values == ("early",)


def test_close_drains_buffers_and_reassembly_into_ledger(engine):
    from repro.sim.audit import R_AFTER_CLOSE, R_PENDING_AT_CLOSE
    from repro.streaming.serialize import encode_tuple

    ledger = DeliveryLedger()
    fabric = TyphoonFabric(engine, DEFAULT_COSTS, Cluster.of_size(1),
                           ledger=ledger)
    sender, _ = make_transport(engine, fabric, 1, batch=1000)
    sender.send(StreamTuple(("stuck",)), [2])
    data = encode_tuple(StreamTuple(("w" * 4000,)))
    head = _fragment_frames(WorkerAddress(2, 7), sender.address, data)[0]
    sender._on_frame(head, None)
    assert sender.pending_reassembly == 1
    sender.close()
    assert sender.dropped_after_close == 1
    assert sender.pending_tuples() == 0
    assert sender.pending_reassembly == 0
    assert ledger.drops == {
        (1, "transport", R_AFTER_CLOSE): 1,
        (2, "reassembly", R_PENDING_AT_CLOSE): 1,
    }

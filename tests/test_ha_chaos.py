"""Controller-HA chaos regimes (``repro chaos --ha``).

The acceptance property: on a replicated control plane, the three HA
regimes — leader kill mid Fig. 6 update, kill of the freshly promoted
successor, leader/store partition with a stale-master probe — must
converge back to a single master with zero rule divergence, complete
fencing, conserved delivery accounting and a bounded, seed-deterministic
blackout. Plus the CLI surface around it.
"""

import io

import pytest

from repro.cli import main
from repro.core.chaos import (
    HA_REGIMES,
    I_HA_BLACKOUT,
    I_HA_CONVERGENCE,
    I_HA_DIVERGENCE,
    I_HA_FENCING,
    run_chaos_ha,
)


@pytest.mark.parametrize("seed", [0, 1])
def test_ha_regimes_pass_all_invariants(seed):
    result = run_chaos_ha(seed=seed, rate=800.0)
    assert result.ok, result.render()
    for name in (I_HA_CONVERGENCE, I_HA_DIVERGENCE, I_HA_FENCING,
                 I_HA_BLACKOUT):
        assert result.invariants.result(name).status == "PASS", name
    ha = result.ha
    # All three regimes fired; each schedule entry names one.
    assert [spec.kind for spec in result.schedule.specs] \
        == list(HA_REGIMES)
    assert result.plan.unresolved == []
    # Zero divergence, everything reconciled, fencing saw the probe.
    assert ha["rule_divergence"]["total"] == 0
    assert ha["blackout"]["unreconciled"] == 0
    assert ha["blackout"]["failovers"] >= 4
    assert 0.0 < ha["blackout"]["max_blackout_ms"] \
        <= ha["blackout"]["budget_ms"]
    assert ha["probes"] == 1
    assert ha["fencing"]["switch_rejections"] >= 1
    assert ha["fencing"]["replica_fenced"] >= 1
    # No stale-master FlowMod reached any flow table: every switch ended
    # mastered by the final leader at the final generation.
    for dpid, stats in ha["switches"].items():
        assert stats["master"] == ha["leader"], dpid
        assert stats["master_generation"] == ha["generation"], dpid
        assert stats["pending_controller"] == 0, dpid


def test_ha_run_is_seed_deterministic():
    first = run_chaos_ha(seed=0, rate=800.0)
    second = run_chaos_ha(seed=0, rate=800.0)
    assert first.render() == second.render()
    assert first.ha["failovers_detail"] == second.ha["failovers_detail"]
    assert (first.invariants.conservation.to_dict()
            == second.invariants.conservation.to_dict())


def test_ha_runs_differ_across_seeds():
    renders = {run_chaos_ha(seed=seed, rate=800.0).render()
               for seed in (0, 1)}
    assert len(renders) == 2


def test_cli_chaos_ha_reports_and_passes():
    out = io.StringIO()
    code = main(["chaos", "--ha", "--seed", "0", "--duration", "16",
                 "--rate", "800"], out=out)
    text = out.getvalue()
    assert code == 0, text
    assert "ha summary" in text
    assert "rule_divergence=0" in text
    assert "[FAIL]" not in text


def test_cli_chaos_ha_requires_typhoon():
    out = io.StringIO()
    code = main(["chaos", "--ha", "--system", "storm"], out=out)
    assert code == 2
    assert "typhoon" in out.getvalue()

"""Placement properties of the resource-aware scheduler (§5).

Seeded random topologies scheduled onto seeded random clusters. On
every instance the scheduler must either produce a placement or raise
the structured :class:`InsufficientResourcesError` — and a placement
must respect every hard constraint:

* per-host committed cpu/memory never exceeds the host's capacity,
  including across multiple topologies sharing one scheduler;
* every (component, task_index) of the logical topology is placed
  exactly once, with cluster-unique worker ids;
* scheduling is deterministic: a fresh scheduler over the same inputs
  yields the identical assignment map;
* ``release()`` returns a topology's commitments exactly (placements
  round-trip);
* on unconstrained clusters the placement never produces more remote
  adjacent-worker pairs than the round-robin Storm baseline.
"""

from __future__ import annotations

import random

import pytest

from repro.core.scheduler import (
    InsufficientResourcesError,
    TyphoonScheduler,
)
from repro.net.hosts import Cluster, Host, HostCapacity
from repro.streaming.scheduler import RoundRobinScheduler, WorkerIdAllocator
from repro.streaming.topology import (
    Bolt,
    LogicalTopology,
    ResourceDemand,
    Spout,
    TopologyBuilder,
)


class _NullSpout(Spout):
    def next_tuple(self, collector):
        pass


class _NullBolt(Bolt):
    def execute(self, stream_tuple, collector):
        pass


def random_topology(rng: random.Random, topology_id: str,
                    max_demand_cpu: float = 40.0) -> LogicalTopology:
    """A random layered DAG with random parallelism and demands."""
    builder = TopologyBuilder(topology_id)

    def demand():
        if rng.random() < 0.2:
            return None  # undeclared: schedulable anywhere
        return ResourceDemand(
            cpu=rng.uniform(5.0, max_demand_cpu),
            memory=rng.uniform(64.0, 1024.0),
            bandwidth=rng.choice([0.0, rng.uniform(1e3, 8e4)]),
        )

    names = ["spout"]
    builder.set_spout("spout", _NullSpout, rng.randint(1, 3),
                      demand=demand())
    for index in range(rng.randint(1, 4)):
        name = "bolt%d" % index
        declarer = builder.set_bolt(name, _NullBolt, rng.randint(1, 3),
                                    demand=demand())
        # Subscribe to 1-2 upstream components (always a DAG).
        for src in rng.sample(names, rng.randint(1, min(2, len(names)))):
            if rng.random() < 0.5:
                declarer.shuffle_grouping(src)
            else:
                declarer.fields_grouping(src, [0])
        names.append(name)
    return builder.build()


def random_cluster(rng: random.Random) -> Cluster:
    cluster = Cluster()
    for index in range(rng.randint(2, 5)):
        if rng.random() < 0.15:
            capacity = None  # unconstrained host
        else:
            capacity = HostCapacity(
                cpu=rng.uniform(40.0, 200.0),
                memory=rng.uniform(1024.0, 8192.0),
                bandwidth=rng.uniform(5e4, 2e5),
            )
        cluster.add(Host("host-%d" % index, capacity=capacity))
    names = [host.name for host in cluster]
    for i, src in enumerate(names):
        for dst in names[i + 1:]:
            if rng.random() < 0.5:
                cluster.set_link_bandwidth(src, dst,
                                           rng.uniform(5e4, 2e5))
    return cluster


def _schedule(scheduler, logical, cluster, app_id=1, allocator=None):
    return scheduler.schedule(logical, cluster, app_id,
                              allocator or WorkerIdAllocator())


def _demand_of(logical, component):
    return logical.nodes[component].demand or ResourceDemand()


def _usage_by_host(logical, physical):
    usage = {}
    for assignment in physical.assignments.values():
        demand = _demand_of(logical, assignment.component)
        cpu, mem = usage.get(assignment.hostname, (0.0, 0.0))
        usage[assignment.hostname] = (cpu + demand.cpu, mem + demand.memory)
    return usage


def _assignment_tuples(physical):
    return sorted((wid, a.component, a.task_index, a.hostname)
                  for wid, a in physical.assignments.items())


def _remote_pairs(physical):
    by_component = {}
    for assignment in physical.assignments.values():
        by_component.setdefault(assignment.component,
                                []).append(assignment.hostname)
    count = 0
    for edge in physical.edges:
        for src_host in by_component.get(edge.src, ()):
            for dst_host in by_component.get(edge.dst, ()):
                if src_host != dst_host:
                    count += 1
    return count


EPS = 1e-9


@pytest.mark.parametrize("seed", range(40))
def test_placement_respects_capacity_or_rejects_structurally(seed):
    rng = random.Random(seed)
    logical = random_topology(rng, "prop-%d" % seed)
    cluster = random_cluster(rng)
    scheduler = TyphoonScheduler(resource_aware=True)
    try:
        physical = _schedule(scheduler, logical, cluster)
    except InsufficientResourcesError as error:
        # The rejection is structured and truthful: the named task
        # exists, carries its declared demand, and genuinely fits on
        # no host given the reported remaining capacities.
        node = logical.nodes[error.component]
        assert 0 <= error.task_index < node.parallelism
        assert error.demand == (node.demand or ResourceDemand())
        assert set(error.remaining) == {host.name for host in cluster}
        for cpu, mem in error.remaining.values():
            assert cpu < error.demand.cpu or mem < error.demand.memory
        # A rejected submission leaves the pool untouched.
        assert all(all(abs(v) < EPS for v in held)
                   for held in scheduler._committed.values())
        return
    # Placed: complete, unique, and within every hard capacity.
    tasks = sorted((a.component, a.task_index)
                   for a in physical.assignments.values())
    expected = sorted((name, i) for name, node in logical.nodes.items()
                      for i in range(node.parallelism))
    assert tasks == expected
    for hostname, (cpu, mem) in _usage_by_host(logical, physical).items():
        capacity = cluster.get(hostname).capacity
        if capacity is None:
            continue
        assert cpu <= capacity.cpu + EPS
        assert mem <= capacity.memory + EPS


@pytest.mark.parametrize("seed", range(40))
def test_placement_is_deterministic(seed):
    rng = random.Random(seed)
    logical = random_topology(rng, "det-%d" % seed)
    cluster = random_cluster(rng)
    outcomes = []
    for _run in range(2):
        scheduler = TyphoonScheduler(resource_aware=True)
        try:
            outcomes.append(_assignment_tuples(
                _schedule(scheduler, logical, cluster)))
        except InsufficientResourcesError as error:
            outcomes.append(("rejected", error.component,
                             error.task_index))
    assert outcomes[0] == outcomes[1]


@pytest.mark.parametrize("seed", range(20))
def test_cross_topology_accounting_and_release(seed):
    """Two topologies share one scheduler: joint usage never exceeds
    capacity, and releasing one returns exactly its commitments."""
    rng = random.Random(1000 + seed)
    cluster = random_cluster(rng)
    scheduler = TyphoonScheduler(resource_aware=True)
    placed = {}
    for topology_id in ("first", "second"):
        logical = random_topology(rng, topology_id, max_demand_cpu=25.0)
        try:
            placed[topology_id] = (logical,
                                   _schedule(scheduler, logical, cluster))
        except InsufficientResourcesError:
            pass
    # Joint hard-resource usage of everything placed fits every host.
    joint = {}
    for logical, physical in placed.values():
        for host, (cpu, mem) in _usage_by_host(logical, physical).items():
            prev = joint.get(host, (0.0, 0.0))
            joint[host] = (prev[0] + cpu, prev[1] + mem)
    for hostname, (cpu, mem) in joint.items():
        capacity = cluster.get(hostname).capacity
        if capacity is None:
            continue
        assert cpu <= capacity.cpu + EPS
        assert mem <= capacity.memory + EPS
    # Releasing everything drains the committed pool to zero.
    for topology_id in placed:
        scheduler.release(topology_id)
    for held in scheduler._committed.values():
        assert all(abs(value) < EPS for value in held)
    # And replaying the submissions in order lands on identical hosts
    # (release really did restore the pre-submission pool).
    for topology_id, (logical, physical) in placed.items():
        again = _schedule(scheduler, logical, cluster,
                          allocator=WorkerIdAllocator())
        assert (sorted((a.component, a.task_index, a.hostname)
                       for a in again.assignments.values())
                == sorted((a.component, a.task_index, a.hostname)
                          for a in physical.assignments.values()))


@pytest.mark.parametrize("seed", range(25))
def test_locality_never_worse_than_round_robin(seed):
    """On an unconstrained cluster the resource-aware placement has at
    most as many remote adjacent-worker pairs as the Storm baseline."""
    rng = random.Random(2000 + seed)
    logical = random_topology(rng, "loc-%d" % seed)
    cluster = Cluster([Host("host-%d" % i)
                       for i in range(rng.randint(2, 5))])
    aware = _schedule(TyphoonScheduler(resource_aware=True), logical,
                      cluster)
    naive = _schedule(RoundRobinScheduler(), logical, cluster)
    assert _remote_pairs(aware) <= _remote_pairs(naive)


def test_default_path_ignores_capacities():
    """resource_aware=False never consults capacities: a topology that
    would be rejected under accounting still block-places."""
    cluster = Cluster([Host("a", HostCapacity(cpu=1.0, memory=1.0)),
                       Host("b", HostCapacity(cpu=1.0, memory=1.0))])
    builder = TopologyBuilder("heavy")
    builder.set_spout("spout", _NullSpout, 2,
                      demand=ResourceDemand(cpu=50.0, memory=512.0))
    builder.set_bolt("sink", _NullBolt, 2,
                     demand=ResourceDemand(cpu=50.0, memory=512.0)
                     ).shuffle_grouping("spout")
    logical = builder.build()
    physical = _schedule(TyphoonScheduler(), logical, cluster)
    assert len(physical.assignments) == 4
    with pytest.raises(InsufficientResourcesError):
        _schedule(TyphoonScheduler(resource_aware=True), logical, cluster)

"""Unit tests for worker agents and the streaming manager."""

import pytest

from repro.coordination import Coordinator, GlobalState
from repro.net import Cluster
from repro.sim import DEFAULT_COSTS, Engine, MetricsRegistry
from repro.sim.rng import SeedFactory
from repro.streaming import (
    LogicalNode,
    Router,
    StormCluster,
    TopologyConfig,
    WorkerAgent,
    WorkerAssignment,
    WorkerExecutor,
)
from repro.streaming.topology import BOLT, Bolt
from tests.conftest import simple_chain
from tests.test_executor import FakeTransport


class Idle(Bolt):
    def execute(self, stream_tuple, collector):
        pass


def make_agent(engine, hostname="host-0", restart=True):
    coordinator = Coordinator(engine, DEFAULT_COSTS)
    state = GlobalState(coordinator)
    metrics = MetricsRegistry(engine)
    built = []

    def factory(assignment):
        executor = WorkerExecutor(
            engine=engine, costs=DEFAULT_COSTS, assignment=assignment,
            node=LogicalNode("c", BOLT, Idle), config=TopologyConfig(),
            transport=FakeTransport(), routers={}, metrics=metrics,
            rng=SeedFactory(0).rng("x"), topology_id="t",
        )
        built.append(executor)
        return executor

    agent = WorkerAgent(engine, DEFAULT_COSTS, hostname, state, factory,
                        restart_crashed=restart)
    return agent, state, built


def assignment(worker_id=1, host="host-0"):
    return WorkerAssignment(worker_id=worker_id, component="c",
                            task_index=0, hostname=host)


def test_launch_after_latency(engine):
    agent, _state, built = make_agent(engine)
    agent.launch("t", assignment())
    engine.run(until=DEFAULT_COSTS.worker_launch_latency - 0.1)
    assert not built
    engine.run(until=DEFAULT_COSTS.worker_launch_latency + 0.1)
    assert len(built) == 1
    assert built[0].alive
    assert agent.launches == 1


def test_launch_wrong_host_rejected(engine):
    agent, _state, _built = make_agent(engine)
    with pytest.raises(ValueError):
        agent.launch("t", assignment(host="elsewhere"))


def test_kill_prevents_pending_launch(engine):
    agent, _state, built = make_agent(engine)
    agent.launch("t", assignment())
    agent.kill(1)
    engine.run(until=5.0)
    assert built == []


def test_crash_triggers_local_restart(engine):
    agent, _state, built = make_agent(engine)
    agent.launch("t", assignment())
    engine.run(until=3.0)
    built[0]._crash(RuntimeError("x"))
    engine.run(until=3.0 + DEFAULT_COSTS.supervisor_restart_delay + 0.5)
    assert len(built) == 2
    assert built[1].alive
    assert agent.restarts == 1


def test_no_restart_when_disabled(engine):
    agent, _state, built = make_agent(engine, restart=False)
    agent.launch("t", assignment())
    engine.run(until=3.0)
    built[0]._crash(RuntimeError("x"))
    engine.run(until=10.0)
    assert len(built) == 1


def test_crash_listeners_invoked(engine):
    agent, _state, built = make_agent(engine)
    seen = []
    agent.crash_listeners.append(
        lambda agent_, executor, error: seen.append(executor.worker_id))
    agent.launch("t", assignment())
    engine.run(until=3.0)
    built[0]._crash(RuntimeError("x"))
    engine.run(until=4.0)
    assert seen == [1]


def test_heartbeats_written_after_uptime(engine):
    agent, state, _built = make_agent(engine)
    agent.launch("t", assignment())
    engine.run(until=DEFAULT_COSTS.worker_launch_latency
               + DEFAULT_COSTS.heartbeat_interval * 2 + 0.5)
    beat = state.read_beat("t", 1)
    assert beat is not None
    assert beat["time"] > 0
    assert "stats" in beat


def test_crash_looping_worker_never_beats(engine):
    agent, state, built = make_agent(engine)
    agent.launch("t", assignment())

    def keep_crashing(agent_, executor, error):
        pass

    engine.run(until=3.0)

    # Crash it every half second, faster than the heartbeat interval.
    def crasher():
        while True:
            yield 0.5
            if built and built[-1].alive:
                built[-1]._crash(RuntimeError("loop"))

    engine.process(crasher())
    engine.run(until=30.0)
    assert state.read_beat("t", 1) is None
    assert agent.restarts > 5


def test_forget_stops_tracking_without_kill(engine):
    agent, _state, built = make_agent(engine)
    agent.launch("t", assignment())
    engine.run(until=3.0)
    executor = built[0]
    agent.forget(1)
    executor._crash(RuntimeError("x"))
    engine.run(until=10.0)
    assert len(built) == 1  # no restart: responsibility dropped


def test_manager_kill_topology_idempotent():
    engine = Engine()
    cluster = StormCluster(engine, num_hosts=1)
    cluster.submit(simple_chain(config=TopologyConfig(max_spout_rate=100)))
    engine.run(until=4.0)
    cluster.manager.kill_topology("chain")
    cluster.manager.kill_topology("chain")  # no error
    engine.run(until=5.0)
    assert cluster.manager.topologies == {}


def test_manager_rejects_duplicate_submission():
    engine = Engine()
    cluster = StormCluster(engine, num_hosts=1)
    cluster.submit(simple_chain(config=TopologyConfig(max_spout_rate=100)))
    with pytest.raises(ValueError):
        cluster.submit(simple_chain(config=TopologyConfig(max_spout_rate=100)))


def test_manager_assigns_distinct_app_ids():
    engine = Engine()
    cluster = StormCluster(engine, num_hosts=1)
    first = cluster.submit(simple_chain("one",
                                        config=TopologyConfig(max_spout_rate=100)))
    second = cluster.submit(simple_chain("two",
                                         config=TopologyConfig(max_spout_rate=100)))
    assert first.app_id != second.app_id
    # Worker ids are cluster-unique across topologies.
    assert set(first.assignments).isdisjoint(second.assignments)

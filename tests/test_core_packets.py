"""Unit + property tests for the Typhoon packet format (Fig. 5)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Fragment, PacketError, Reassembler, pack_tuples, unpack_payload


def test_multiplexing_small_tuples_into_one_packet():
    tuples = [b"tuple-%d" % i for i in range(10)]
    payloads, _ = pack_tuples(tuples, mtu=1500)
    assert len(payloads) == 1
    assert unpack_payload(payloads[0]) == tuples


def test_packing_respects_mtu():
    tuples = [b"x" * 200 for _ in range(20)]
    payloads, _ = pack_tuples(tuples, mtu=1000)
    assert all(len(p) <= 1000 for p in payloads)
    recovered = []
    for payload in payloads:
        recovered.extend(unpack_payload(payload))
    assert recovered == tuples


def test_large_tuple_is_fragmented():
    big = bytes(range(256)) * 40  # 10240 bytes
    payloads, next_id = pack_tuples([big], mtu=1500)
    assert len(payloads) > 1
    assert next_id == 1
    fragments = [unpack_payload(p) for p in payloads]
    assert all(isinstance(f, Fragment) for f in fragments)
    reassembler = Reassembler()
    result = None
    for fragment in fragments:
        result = reassembler.feed(7, fragment)
    assert result == big
    assert reassembler.pending_count == 0


def test_mixed_small_and_large():
    small = [b"aa", b"bb"]
    big = b"z" * 5000
    payloads, _ = pack_tuples(small + [big] + small, mtu=1500)
    records, fragments = [], []
    for payload in payloads:
        decoded = unpack_payload(payload)
        if isinstance(decoded, Fragment):
            fragments.append(decoded)
        else:
            records.extend(decoded)
    assert records == small + small
    reassembler = Reassembler()
    outcome = [reassembler.feed(1, f) for f in fragments]
    assert outcome[-1] == big


def test_fragment_ids_thread_across_calls():
    big = b"y" * 4000
    _payloads, next_id = pack_tuples([big], mtu=1500, next_frag_id=41)
    assert next_id == 42


def test_interleaved_fragments_from_different_sources():
    big_a = b"a" * 4000
    big_b = b"b" * 4000
    frags_a = [unpack_payload(p) for p in pack_tuples([big_a], 1500)[0]]
    frags_b = [unpack_payload(p) for p in pack_tuples([big_b], 1500)[0]]
    reassembler = Reassembler()
    result_a = result_b = None
    for fa, fb in zip(frags_a, frags_b):
        result_a = reassembler.feed(1, fa) or result_a
        result_b = reassembler.feed(2, fb) or result_b
    assert result_a == big_a
    assert result_b == big_b


def test_missing_head_fragment_is_orphan_not_drop():
    big = b"c" * 4000
    fragments = [unpack_payload(p) for p in pack_tuples([big], 1500)[0]]
    reassembler = Reassembler()
    # Without the head fragment the tuple died upstream (wherever the
    # head was lost); trailing chunks are orphans, not fresh drops.
    assert reassembler.feed(1, fragments[1]) is None
    assert reassembler.dropped == 0
    assert reassembler.orphan_fragments == 1


def test_gap_in_fragments_discards_partial():
    big = b"d" * 6000
    fragments = [unpack_payload(p) for p in pack_tuples([big], 1500)[0]]
    assert len(fragments) >= 3
    reassembler = Reassembler()
    reassembler.feed(1, fragments[0])
    assert reassembler.feed(1, fragments[2]) is None  # skipped one
    assert reassembler.dropped == 1
    assert reassembler.pending_count == 0


def test_malformed_payloads_rejected():
    with pytest.raises(PacketError):
        unpack_payload(b"")
    with pytest.raises(PacketError):
        unpack_payload(bytes([0xEE]) + b"junk")
    # Truncated MULTI record.
    good, _ = pack_tuples([b"hello"], 1500)
    with pytest.raises(PacketError):
        unpack_payload(good[0][:-2])
    with pytest.raises(PacketError):
        unpack_payload(good[0] + b"trailing")


def test_tiny_mtu_rejected():
    with pytest.raises(ValueError):
        pack_tuples([b"x"], mtu=8)


def test_empty_tuple_list():
    payloads, next_id = pack_tuples([], mtu=1500)
    assert payloads == []
    assert next_id == 0


@settings(max_examples=100)
@given(st.lists(st.binary(min_size=0, max_size=4000), max_size=20),
       st.integers(120, 9000))
def test_pack_unpack_roundtrip_property(tuples, mtu):
    payloads, _ = pack_tuples(tuples, mtu=mtu)
    assert all(len(p) <= mtu for p in payloads)
    reassembler = Reassembler()
    recovered = []
    for payload in payloads:
        decoded = unpack_payload(payload)
        if isinstance(decoded, Fragment):
            complete = reassembler.feed(0, decoded)
            if complete is not None:
                recovered.append(complete)
        else:
            recovered.extend(decoded)
    assert recovered == tuples
    assert reassembler.pending_count == 0

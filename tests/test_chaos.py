"""Chaos subsystem tests: injectors, schedules, invariants, surfaces.

The headline property under test is *seeded determinism*: one seed must
reproduce an entire fault scenario — schedule, injections, recovery and
the final invariant report — byte for byte, on both runtimes. The rest
of the file unit-tests each injector's semantics (lossless partitions,
accounted lossy links, flow-table re-sync after switch crashes,
controller outage buffering) and the CLI/REST surfaces.
"""

import io
import random

import pytest

from repro.cli import main
from repro.core import TyphoonCluster
from repro.core.apps import FaultDetector
from repro.core.audit import conservation_report
from repro.core.chaos import (
    I_DETECTOR,
    I_FLOW_CONSISTENCY,
    InvariantChecker,
    run_chaos,
)
from repro.core.rest import RestApi
from repro.sim import Engine
from repro.sim.audit import R_LINK_LOSS
from repro.sim.faults import (
    STORM_KINDS,
    TYPHOON_KINDS,
    ChaosSchedule,
    kill_worker_at,
    set_control_fault,
    set_controller_down,
    set_link_down,
    set_link_loss,
    set_switch_down,
)
from repro.streaming import TopologyConfig
from repro.workloads import DEDUP_SERVICE, DedupRegistry, chaos_topology


def start(hosts=3, rate=1200.0, warmup=4.0):
    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=hosts, seed=0)
    cluster.register_app(FaultDetector(cluster))
    cluster.services[DEDUP_SERVICE] = DedupRegistry()
    config = TopologyConfig(batch_size=50, max_spout_rate=rate)
    cluster.submit(chaos_topology("chaos", config))
    engine.run(until=warmup)
    return engine, cluster


# -- seeded determinism (the tentpole acceptance criterion) -----------------


@pytest.mark.parametrize("system", ["typhoon", "storm"])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_chaos_run_deterministic_and_invariants_hold(system, seed):
    first = run_chaos(system, seed=seed, duration=12.0, faults=4, rate=800.0)
    second = run_chaos(system, seed=seed, duration=12.0, faults=4, rate=800.0)
    # Same seed => byte-identical report and ledger snapshot.
    assert first.render() == second.render()
    assert (first.invariants.conservation.to_dict()
            == second.invariants.conservation.to_dict())
    # Every built-in scenario passes all four invariants.
    assert first.ok, first.render()
    # Every injected fault fired and every durable one was restored.
    assert len(first.plan.fired) == 4
    assert first.plan.unresolved == []


def test_chaos_runs_differ_across_seeds():
    reports = {run_chaos("typhoon", seed=seed, duration=12.0, faults=4,
                         rate=800.0).render() for seed in (0, 1, 2)}
    assert len(reports) == 3


def test_storm_report_skips_sdn_invariants():
    result = run_chaos("storm", seed=0, duration=12.0, faults=3, rate=800.0)
    assert result.invariants.result(I_FLOW_CONSISTENCY).status == "SKIP"
    assert result.invariants.result(I_DETECTOR).status == "SKIP"
    assert result.ok


# -- the schedule generator -------------------------------------------------


def test_chaos_schedule_is_seed_deterministic():
    def make(seed):
        return ChaosSchedule(seed, kinds=TYPHOON_KINDS, workers=[1, 2, 3],
                             hosts=["host-0", "host-1", "host-2"],
                             window=(4.0, 14.0), count=8)

    assert make(5).describe() == make(5).describe()
    assert make(5).describe() != make(6).describe()
    specs = make(5).specs
    assert len(specs) == 8
    assert all(4.0 <= spec.when <= 14.0 for spec in specs)
    assert all(spec.when + spec.duration <= 14.0 + 1e-9 for spec in specs)
    assert [s.when for s in specs] == sorted(s.when for s in specs)


def test_chaos_schedule_respects_kind_subset():
    schedule = ChaosSchedule(1, kinds=STORM_KINDS, workers=[1],
                             hosts=["host-0"], window=(1.0, 5.0), count=10)
    assert {spec.kind for spec in schedule.specs} <= set(STORM_KINDS)


def test_chaos_schedule_rejects_bad_window():
    with pytest.raises(ValueError):
        ChaosSchedule(1, kinds=TYPHOON_KINDS, workers=[1], hosts=["host-0"],
                      window=(5.0, 5.0), count=2)


# -- injector semantics -----------------------------------------------------


def test_link_partition_is_lossless():
    engine, cluster = start()
    baseline = conservation_report(cluster).drops
    set_link_down(cluster, "host-0", "host-1", True)
    engine.run(until=engine.now + 1.0)
    set_link_down(cluster, "host-0", "host-1", False)
    engine.run(until=engine.now + 1.0)
    report = conservation_report(cluster)
    # TCP semantics: a partition buffers, it never drops.
    assert report.drops == baseline
    InvariantChecker(cluster).run()
    assert conservation_report(cluster).ok


def test_lossy_link_drops_are_attributed():
    engine, cluster = start()
    set_link_loss(cluster, "host-0", "host-1", 0.5, random.Random(7))
    engine.run(until=engine.now + 1.0)
    set_link_loss(cluster, "host-0", "host-1", 0.0)
    report = InvariantChecker(cluster).run()
    assert report.ok, report.render()
    loss = {(layer, reason): count for _t, layer, reason, count
            in report.conservation.drop_rows}
    assert loss.get(("channel", R_LINK_LOSS), 0) > 0


def test_switch_crash_loses_rules_and_resync_restores_them():
    engine, cluster = start()
    switch = cluster.fabric.host("host-0").switch
    assert len(switch.flows) > 0
    set_switch_down(cluster, "host-0", True)
    assert len(switch.flows) == 0 and not switch.up
    engine.run(until=engine.now + 0.5)
    set_switch_down(cluster, "host-0", False)
    engine.run(until=engine.now + 1.0)
    assert switch.up and switch.crashes == 1
    # The controller purged its diff bookkeeping and re-installed
    # every rule its coordinator state implies for this dpid.
    for (dpid, match), (priority, actions) in \
            cluster.app.desired_rules("chaos").items():
        if dpid != switch.dpid:
            continue
        entry = next((e for e in switch.flows
                      if e.match == match and e.priority == priority), None)
        assert entry is not None and tuple(entry.actions) == tuple(actions)
    report = InvariantChecker(cluster).run()
    assert report.ok, report.render()


def test_controller_outage_buffers_port_events():
    engine, cluster = start()
    record = cluster.manager.topologies["chaos"]
    victim = record.physical.worker_ids_for("relay")[0]
    set_controller_down(cluster, True)
    assert cluster.sdn.outages == 1
    kill_worker_at(cluster, victim, when=engine.now)
    engine.run(until=engine.now + 1.0)
    # The PORT_DELETE is queued, not processed: the app still maps the
    # dead worker to a host.
    assert victim in cluster.app.worker_host
    set_controller_down(cluster, False)
    engine.run(until=engine.now + 6.0)  # backlog drains, worker restarts
    assert victim in cluster.app.worker_host  # re-added by the restart
    report = InvariantChecker(cluster).run()
    assert report.ok, report.render()


def test_control_channel_drop_counts_and_conserves():
    engine, cluster = start()
    set_control_fault(cluster, drop_rate=1.0, rng=random.Random(3))
    record = cluster.manager.topologies["chaos"]
    victim = record.physical.worker_ids_for("relay")[0]
    kill_worker_at(cluster, victim, when=engine.now)
    engine.run(until=engine.now + 1.0)
    assert cluster.sdn.control_dropped > 0
    set_control_fault(cluster)  # heal
    engine.run(until=engine.now + 5.0)
    report = InvariantChecker(cluster).run()
    assert report.ok, report.render()


def test_mid_update_fault_via_phase_trigger():
    from repro.core.update import PHASE_RULES
    from repro.sim.faults import FaultPlan

    engine, cluster = start()
    seen = []
    plan = (FaultPlan(cluster)
            .at_phase("chaos", "scale_up", PHASE_RULES,
                      lambda: seen.append(engine.now),
                      description="probe at rules phase")
            .arm())
    cluster.set_parallelism("chaos", "relay", 3)
    engine.run(until=engine.now + 8.0)
    assert len(seen) == 1
    assert "probe at rules phase" in plan.fired


# -- surfaces ---------------------------------------------------------------


def test_rest_chaos_route_reports_live_state():
    engine, cluster = start()
    api = RestApi(cluster)
    status, payload = api.handle("GET", "/chaos")
    assert status == 200
    assert payload["controller"]["up"] is True
    assert payload["duplicates"]["duplicates"] == 0
    assert set(payload["switches"]) == {"host-0", "host-1", "host-2"}
    set_switch_down(cluster, "host-1", True)
    status, payload = api.handle("GET", "/chaos")
    assert payload["switches"]["host-1"]["up"] is False
    assert payload["switches"]["host-1"]["crashes"] == 1


def test_cli_chaos_is_reproducible_and_exits_zero():
    def run():
        out = io.StringIO()
        code = main(["chaos", "--seed", "2", "--duration", "12",
                     "--faults", "3", "--rate", "800"], out=out)
        return code, out.getvalue()

    code_a, text_a = run()
    code_b, text_b = run()
    assert code_a == code_b == 0
    assert text_a == text_b
    assert "invariant report" in text_a
    assert "verdict: OK" in text_a


def test_cli_chaos_both_systems():
    out = io.StringIO()
    code = main(["chaos", "--system", "both", "--seed", "1",
                 "--duration", "10", "--faults", "2", "--rate", "600"],
                out=out)
    text = out.getvalue()
    assert code == 0
    assert "system=typhoon" in text and "system=storm" in text

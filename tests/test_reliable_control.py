"""Reliable control channel: sequence-stamped control tuples, controller
retry with backoff, and idempotent re-application at workers — exercised
against injected PacketIn/PacketOut drop and delay faults."""

import random

from repro.core import TyphoonCluster
from repro.sim import Engine
from repro.sim.faults import set_control_fault
from repro.streaming import Bolt, Spout, TopologyBuilder, TopologyConfig


class QuietSpout(Spout):
    def next_tuple(self, collector):
        return


class SignalBolt(Bolt):
    """Counts on_signal invocations (class-level: survives restarts)."""

    signals = 0

    def on_signal(self, signal, collector):
        SignalBolt.signals += 1


def _deploy(reliable=True, seed=13):
    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=1, seed=seed)
    config = TopologyConfig(batch_size=10, reliable_control=reliable)
    builder = TopologyBuilder("controlled", config)
    builder.set_spout("source", QuietSpout, 1)
    builder.set_bolt("sink", SignalBolt, 1).shuffle_grouping("source")
    physical = cluster.submit(builder.build())
    [sink_id] = physical.worker_ids_for("sink")
    engine.run(until=3.0)  # deployment settles
    return engine, cluster, sink_id


def test_clean_channel_ack_drains_outstanding():
    SignalBolt.signals = 0
    engine, cluster, sink_id = _deploy()
    before = cluster.app.control_channel_stats()  # deployment traffic
    assert before["outstanding"] == 0
    assert cluster.app.send_signal("controlled", sink_id)
    engine.run(until=5.0)
    stats = cluster.app.control_channel_stats()
    assert SignalBolt.signals == 1
    assert stats["acked"] == before["acked"] + 1
    assert stats["outstanding"] == 0
    assert stats["retries"] == before["retries"]
    assert stats["exhausted"] == before["exhausted"]
    executor = cluster.executor(sink_id)
    assert executor.applied_control_seqs


def test_redelivery_survives_control_drop():
    """A 100% drop window swallows the first transmissions; after the
    heal, the controller's backoff retries get the tuple through and the
    worker applies it exactly once."""
    SignalBolt.signals = 0
    engine, cluster, sink_id = _deploy()
    before = cluster.app.control_channel_stats()
    set_control_fault(cluster, drop_rate=1.0, rng=random.Random(1))
    assert cluster.app.send_signal("controlled", sink_id)
    engine.schedule(1.2, set_control_fault, cluster)  # heal
    engine.run(until=10.0)
    stats = cluster.app.control_channel_stats()
    assert SignalBolt.signals == 1
    assert stats["retries"] > before["retries"]
    assert stats["acked"] == before["acked"] + 1
    assert stats["outstanding"] == 0
    assert stats["exhausted"] == before["exhausted"]


def test_delay_induced_duplicates_are_idempotent():
    """Channel latency above the retry timeout makes the controller
    retransmit tuples that were *not* lost: the worker must dedup by
    sequence number and the controller must absorb the duplicate acks."""
    SignalBolt.signals = 0
    engine, cluster, sink_id = _deploy()
    before = cluster.app.control_channel_stats()
    set_control_fault(cluster, extra_delay=0.8)  # >> retry timeout 0.25
    assert cluster.app.send_signal("controlled", sink_id)
    engine.schedule(2.0, set_control_fault, cluster)  # heal
    engine.run(until=10.0)
    stats = cluster.app.control_channel_stats()
    assert SignalBolt.signals == 1  # duplicates deduped at the worker
    assert stats["retries"] > before["retries"]
    assert stats["duplicate_acks"] > before["duplicate_acks"]
    assert stats["acked"] == before["acked"] + 1
    assert stats["outstanding"] == 0


def test_retry_budget_exhaustion_is_counted():
    """A permanently dead channel: the controller gives up after its
    retry budget and records the exhaustion instead of looping forever."""
    SignalBolt.signals = 0
    engine, cluster, sink_id = _deploy()
    before = cluster.app.control_channel_stats()
    set_control_fault(cluster, drop_rate=1.0,  # never healed
                      rng=random.Random(1))
    assert cluster.app.send_signal("controlled", sink_id)
    engine.run(until=25.0)
    stats = cluster.app.control_channel_stats()
    assert SignalBolt.signals == 0
    assert stats["exhausted"] == before["exhausted"] + 1
    assert stats["outstanding"] == 0
    # budget is 8 attempts: 1 original + 7 retries.
    assert stats["retries"] == before["retries"] + 7


def test_default_channel_is_unstamped():
    """reliable_control off (the default): no sequence stamping, no
    tracking — the wire format and worker state match the seed exactly."""
    SignalBolt.signals = 0
    engine, cluster, sink_id = _deploy(reliable=False)
    assert cluster.app.send_signal("controlled", sink_id)
    engine.run(until=5.0)
    assert SignalBolt.signals == 1
    stats = cluster.app.control_channel_stats()
    assert stats["reliable_topologies"] == 0
    assert stats["acked"] == 0 and stats["outstanding"] == 0
    executor = cluster.executor(sink_id)
    assert executor.applied_control_seqs == set()

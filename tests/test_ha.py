"""Replicated control plane: election, fencing, failover, fail-safe
switches.

The unit half drives :class:`HAControlPlane` against bare switches: the
lowest election sequence wins, generations only move forward, stale
masters are fenced by the switch (not trusted to stand down), and a
blackout buffers control events bounded with ledger-attributed overflow.
The integration half runs the full Typhoon runtime with ``ha_replicas``
and checks warm takeover, zero rule divergence after failover, and the
single-controller path staying byte-identical (no HA => no channels, no
HA invariants, 404 on GET /ha).
"""

import pytest

from repro.coordination import Coordinator
from repro.core import TyphoonCluster
from repro.core.apps import FaultDetector
from repro.core.rest import RestApi
from repro.net import TYPHOON_ETHERTYPE, EthernetFrame, WorkerAddress
from repro.sdn import (
    OFPP_CONTROLLER,
    ROLE_MASTER,
    ROLE_SLAVE,
    ControllerApp,
    FlowMod,
    HAControlPlane,
    Match,
    NetworkHypervisor,
    Output,
    SoftwareSwitch,
    ADD,
)
from repro.sdn.ha import ELECTION_PATH, GENERATION_PATH
from repro.sim import DEFAULT_COSTS, Engine
from repro.sim.audit import DeliveryLedger, LAYER_SWITCH, R_CONTROL_BACKLOG
from repro.sim.faults import (
    set_controller_replica_down,
    set_store_partition,
    set_switch_down,
)
from repro.streaming import TopologyConfig
from repro.workloads import DEDUP_SERVICE, DedupRegistry, chaos_topology


def make_plane(engine, replicas=3, switches=1, ledger=None):
    coordinator = Coordinator(engine, DEFAULT_COSTS)
    plane = HAControlPlane(engine, DEFAULT_COSTS, coordinator,
                           ledger=ledger, replicas=replicas)
    fabric = [SoftwareSwitch(engine, DEFAULT_COSTS, dpid="sw%d" % i)
              for i in range(switches)]
    if ledger is not None:
        for switch in fabric:
            switch.ledger = ledger
    plane.attach_switches(fabric)
    plane.start()
    return plane, fabric


def typhoon_frame(payload=b"x"):
    return EthernetFrame(dst=WorkerAddress(1, 2), src=WorkerAddress(1, 1),
                         ethertype=TYPHOON_ETHERTYPE, payload=payload)


class PacketInRecorder(ControllerApp):
    name = "recorder"

    def __init__(self):
        super().__init__()
        self.seen = []

    def on_packet_in(self, message):
        self.seen.append(message)


def flows_matching(switch, match):
    return [entry for entry in switch.flows if entry.match == match]


# -- election ---------------------------------------------------------------


def test_initial_election_lowest_sequence_wins():
    engine = Engine()
    plane, (switch,) = make_plane(engine)
    engine.run(until=0.5)
    assert plane.leader_name == "controller-0"
    assert plane.generation == 1
    assert plane.leader.role == ROLE_MASTER
    assert [r.role for r in plane.replicas[1:]] == [ROLE_SLAVE, ROLE_SLAVE]
    assert switch.master_controller == "controller-0"
    assert switch.master_generation == 1
    # No failover record for the initial election.
    assert plane.failovers == []


def test_replicated_plane_needs_two_replicas():
    engine = Engine()
    coordinator = Coordinator(engine, DEFAULT_COSTS)
    with pytest.raises(ValueError):
        HAControlPlane(engine, DEFAULT_COSTS, coordinator, replicas=1)


def test_election_members_are_sequence_ordered():
    engine = Engine()
    plane, _ = make_plane(engine)
    engine.run(until=0.5)
    members = plane.election_members()
    assert [m["owner"] for m in members] == [
        "controller-0", "controller-1", "controller-2"]
    assert [m["member"] for m in members] == sorted(
        m["member"] for m in members)


# -- failover + generations -------------------------------------------------


def test_leader_kill_promotes_successor_with_higher_generation():
    engine = Engine()
    plane, (switch,) = make_plane(engine)
    engine.run(until=0.5)
    plane.replica("controller-0").fail()
    engine.run(until=3.0)
    assert plane.leader_name == "controller-1"
    assert plane.generation == 2
    assert switch.master_controller == "controller-1"
    assert switch.master_generation == 2
    record = plane.failovers[-1]
    assert record["previous"] == "controller-0"
    assert record["reconciled_at"] is not None
    assert 0.0 < record["blackout_ms"] <= plane.blackout_budget * 1000.0
    # The restarted ex-leader rejoins as a standby, not a master.
    plane.replica("controller-0").recover()
    engine.run(until=5.0)
    assert plane.leader_name == "controller-1"
    assert plane.replica("controller-0").role == ROLE_SLAVE


def test_generation_counter_is_monotonic_across_failovers():
    engine = Engine()
    plane, _ = make_plane(engine)
    engine.run(until=0.5)
    seen = [plane.generation]
    for victim in ("controller-0", "controller-1"):
        plane.replica(victim).fail()
        engine.run(until=engine.now + 2.5)
        seen.append(plane.generation)
        plane.replica(victim).recover()
        engine.run(until=engine.now + 1.0)
    assert seen == [1, 2, 3]
    data, _version = plane.coordinator.get(GENERATION_PATH)
    assert data == plane.generation


def test_blackout_is_deterministic_for_a_fixed_schedule():
    def run_once():
        engine = Engine()
        plane, _ = make_plane(engine)
        engine.run(until=0.5)
        plane.replica("controller-0").fail()
        engine.run(until=4.0)
        return plane.failovers[-1]["blackout_ms"]

    first, second = run_once(), run_once()
    assert first == second
    assert first > 0.0


# -- split-brain fencing -----------------------------------------------------


def test_slave_mutations_are_fenced_by_the_switch():
    engine = Engine()
    plane, (switch,) = make_plane(engine)
    engine.run(until=0.5)
    standby = plane.replica("controller-2")
    probe = Match(in_port=199)
    standby.sdn.install_flow(switch.dpid, probe, (), priority=1)
    engine.run(until=1.0)
    assert flows_matching(switch, probe) == []
    assert switch.stale_master_rejections >= 1
    assert standby.fenced >= 1


def test_partitioned_stale_master_is_fenced_and_demoted():
    engine = Engine()
    plane, (switch,) = make_plane(engine)
    engine.run(until=0.5)
    old = plane.leader
    old.store_reachable = False
    engine.run(until=3.0)
    # Session expired, a successor took over with a higher generation.
    assert plane.leader_name != old.name
    assert plane.generation == 2
    # The stale master still thinks it leads; the switch must say no.
    assert old.role == ROLE_MASTER
    probe = Match(in_port=198)
    old.sdn.install_flow(switch.dpid, probe, (), priority=1)
    engine.run(until=4.0)
    assert flows_matching(switch, probe) == []
    assert old.fenced >= 1
    assert old.role == ROLE_SLAVE  # the stale RoleReply deposed it
    old.store_reachable = True
    engine.run(until=6.0)
    assert plane.leader_name != old.name  # rejoined behind the new leader


# -- fail-safe switch blackout (bounded pending buffer) ----------------------


def test_blackout_buffers_events_and_flushes_to_next_master():
    engine = Engine()
    plane, (switch,) = make_plane(engine)
    plane.register_app_factory(PacketInRecorder)
    p_in = switch.add_port("w1", lambda f, t: None)
    engine.run(until=0.5)
    switch.handle_message_from(
        plane.leader_name,
        FlowMod(ADD, Match(in_port=p_in), (Output(OFPP_CONTROLLER),)))
    engine.run(until=1.0)
    plane.replica("controller-0").fail()
    # Blackout: no live master. The data plane still accepts frames and
    # buffers the PacketIns instead of dropping them.
    assert switch.inject(p_in, typhoon_frame())
    assert switch.stats()["pending_controller"] == 1
    engine.run(until=4.0)
    # Promotion flushed the buffer to the new master.
    assert switch.stats()["pending_controller"] == 0
    assert switch.stats()["pending_high_water"] == 1
    new_leader = plane.leader
    assert new_leader.name == "controller-1"
    assert len(new_leader.sdn.app("recorder").seen) == 1
    # The dead ex-leader never saw the buffered event.
    assert plane.replica("controller-0").sdn.app("recorder").seen == []


def test_pending_buffer_bound_attributes_overflow_to_the_ledger():
    engine = Engine()
    scope = 7
    ledger = DeliveryLedger(inspector=lambda frame: (scope, 1))
    plane, (switch,) = make_plane(engine, ledger=ledger)
    p_in = switch.add_port("w1", lambda f, t: None)
    engine.run(until=0.5)
    switch.handle_message_from(
        plane.leader_name,
        FlowMod(ADD, Match(in_port=p_in), (Output(OFPP_CONTROLLER),)))
    engine.run(until=1.0)
    for replica in plane.replicas:
        replica.fail()  # total control-plane outage: nobody to promote
    switch.max_pending_controller = 4
    for index in range(7):
        ledger.record_sent(scope)
        switch.inject(p_in, typhoon_frame(b"p%d" % index))
    engine.run(until=2.0)
    stats = switch.stats()
    assert stats["pending_controller"] == 4
    assert stats["pending_high_water"] == 4
    assert stats["pending_overflow_dropped"] == 3
    assert ledger.drops[(scope, LAYER_SWITCH, R_CONTROL_BACKLOG)] == 3
    # Buffered PacketIns count controller-delivered; overflow counts
    # dropped — nothing unattributed.
    assert (ledger.controller_delivered[scope] + ledger.total_drops()
            == ledger.total_sent())


# -- warm takeover + reconciliation (full runtime) ---------------------------


def start_ha_cluster(replicas=3, rate=800.0, warmup=4.0):
    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=3, seed=0,
                             ha_replicas=replicas)
    cluster.register_app_factory(lambda: FaultDetector(cluster))
    cluster.services[DEDUP_SERVICE] = DedupRegistry()
    config = TopologyConfig(batch_size=50, max_spout_rate=rate)
    cluster.submit(chaos_topology("chaos", config))
    engine.run(until=warmup)
    return engine, cluster


def test_failover_restores_state_and_leaves_zero_divergence():
    engine, cluster = start_ha_cluster()
    ha = cluster.ha
    old_app = cluster.app
    assert old_app.port_map  # the leader learned the network
    set_controller_replica_down(cluster, ha.leader_name, True)
    engine.run(until=8.0)
    assert ha.leader_name == "controller-1"
    new_app = cluster.app
    assert new_app is not old_app
    # Warm takeover: the standby restored the published bookkeeping
    # instead of cold-starting.
    assert new_app.port_map == old_app.port_map
    assert sorted(new_app.managed) == sorted(old_app.managed)
    assert ha.rule_divergence()["total"] == 0
    summary = ha.blackout_summary()
    assert summary["failovers"] == 1
    assert summary["unreconciled"] == 0
    assert 0.0 < summary["max_blackout_ms"] <= summary["budget_ms"]


def test_store_partition_failover_via_fault_helpers():
    engine, cluster = start_ha_cluster()
    ha = cluster.ha
    victim = ha.leader_name
    set_store_partition(cluster, victim, True)
    engine.run(until=8.0)
    assert ha.leader_name != victim
    set_store_partition(cluster, victim, False)
    engine.run(until=10.0)
    assert ha.rule_divergence()["total"] == 0
    assert cluster.coordinator.session_active(victim)


def test_ha_snapshot_and_rest_surface():
    engine, cluster = start_ha_cluster()
    snapshot = cluster.ha.snapshot()
    assert snapshot["leader"] == "controller-0"
    assert snapshot["generation"] == 1
    assert len(snapshot["replicas"]) == 3
    assert snapshot["rule_divergence"]["total"] == 0
    assert snapshot["store"]["sessions"] == 3
    api = RestApi(cluster)
    status, body = api.handle("GET", "/ha")
    assert status == 200
    assert body["leader"] == "controller-0"


# -- guardrails --------------------------------------------------------------


def test_ha_excludes_resource_aware_scheduling():
    engine = Engine()
    with pytest.raises(ValueError):
        TyphoonCluster(engine, num_hosts=3, seed=0, ha_replicas=3,
                       resource_aware=True)


def test_ha_cluster_rejects_register_app():
    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=3, seed=0, ha_replicas=3)
    with pytest.raises(ValueError):
        cluster.register_app(FaultDetector(cluster))


def test_hypervisor_rejects_ha_managed_switch():
    engine = Engine()
    plane, (switch,) = make_plane(engine)
    hypervisor = NetworkHypervisor(engine, DEFAULT_COSTS)
    with pytest.raises(ValueError):
        hypervisor.connect_switch(switch)


def test_single_controller_path_is_untouched_without_ha():
    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=3, seed=0)
    assert cluster.ha is None
    cluster.register_app(FaultDetector(cluster))  # legacy API still works
    for switch in cluster.fabric.switches():
        assert switch.channels() == ()
    api = RestApi(cluster)
    status, body = api.handle("GET", "/ha")
    assert status == 404
    # The election never touched the coordination store.
    assert not cluster.coordinator.exists(ELECTION_PATH)


# -- switch-reconnect storms during an active update -------------------------


def test_reconnect_storm_during_update_leaves_no_rule_leaks():
    """Two back-to-back switch crash/reconnect cycles while a Fig. 6
    scale-up is mid-flight: the controller's shadow bookkeeping must end
    exactly equal to the desired rule set — no double-install, no
    desired-state leaks from the torn-down tables."""
    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=3, seed=0)
    cluster.register_app(FaultDetector(cluster))
    cluster.services[DEDUP_SERVICE] = DedupRegistry()
    config = TopologyConfig(batch_size=50, max_spout_rate=600.0)
    cluster.submit(chaos_topology("chaos", config, relays=2, sinks=2))
    engine.run(until=3.0)

    storm_host = "host-1"

    def bounce(round_index):
        set_switch_down(cluster, storm_host, True)
        engine.schedule(0.05, set_switch_down, cluster, storm_host, False)
        if round_index == 0:
            # Second bounce lands right as the first reconnect re-sync
            # is still installing rules.
            engine.schedule(0.15, bounce, 1)

    seen_phases = []

    def on_phase(topology_id, op, phase):
        seen_phases.append(phase)
        if phase == "rules" and op == "scale_up":
            bounce(0)

    cluster.update_phase_listeners.append(on_phase)
    cluster.set_parallelism("chaos", "relay", 3)
    engine.run(until=12.0)

    assert "rules" in seen_phases
    app = cluster.app
    desired = app.desired_rules("chaos")
    installed = app._installed["chaos"]
    assert set(installed) == set(desired)
    # Every desired rule is present exactly once on the live tables.
    for (dpid, match), (priority, actions) in desired.items():
        switch = cluster.sdn.switches[dpid]
        entries = [e for e in switch.flows if e.match == match]
        assert len(entries) == 1, (dpid, match)
        assert entries[0].priority == priority
        assert tuple(entries[0].actions) == tuple(actions)

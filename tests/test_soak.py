"""Soak test: a long mixed scenario on one Typhoon cluster.

Runs a word-count pipeline for 120 virtual seconds while exercising, in
sequence: a debug tap, a scale-up, a worker fault with fault-detector
recovery, a logic hot-swap, a grouping change and a detach — then checks
global invariants (conservation, no data-plane drops, coordinator state
consistency)."""

import pytest

from repro.core import TyphoonCluster
from repro.core.apps import FaultDetector, LiveDebugger
from repro.sim import Engine
from repro.sim.faults import kill_worker_at
from repro.streaming import Grouping, TopologyConfig
from repro.workloads import SplitBolt, word_count_topology


class TaggedSplit(SplitBolt):
    def execute(self, stream_tuple, collector):
        for word in stream_tuple[0].split():
            collector.emit(("soak:" + word, 1), anchor=stream_tuple)


def test_soak_mixed_operations():
    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=3, seed=13)
    detector = cluster.register_app(FaultDetector(cluster))
    debugger = cluster.register_app(LiveDebugger(cluster))
    config = TopologyConfig(batch_size=50, max_spout_rate=1500)
    cluster.submit(word_count_topology("soak", config, splits=2, counts=3,
                                       words_per_sentence=2))
    engine.run(until=10.0)

    # 1. live debugging on and off
    debugger.tap("soak", "source")
    engine.run(until=20.0)
    debug = debugger.debug_executor("soak", "source")
    assert debug.stats.processed > 0
    debugger.untap("soak", "source")

    # 2. scale the split stage up
    cluster.set_parallelism("soak", "split", 3)
    engine.run(until=40.0)
    assert len(cluster.executors_for("soak", "split")) == 3

    # 3. inject a worker fault; the detector redirects
    record = cluster.manager.topologies["soak"]
    victim = record.physical.worker_ids_for("split")[0]
    kill_worker_at(cluster, victim, when=45.0)
    engine.run(until=60.0)
    assert detector.detections >= 1

    # 4. hot-swap split logic
    cluster.replace_computation("soak", "split", TaggedSplit)
    engine.run(until=80.0)
    splits = cluster.executors_for("soak", "split")
    assert all(isinstance(s.component, TaggedSplit) for s in splits)

    # 5. change routing policy on source->split
    cluster.set_grouping("soak", "source", "split", Grouping("shuffle"))
    engine.run(until=95.0)

    # 6. quiesce and check invariants
    cluster.deactivate("soak")
    engine.run(until=120.0)

    counts = cluster.executors_for("soak", "count")
    merged = {}
    for executor in counts:
        for word, count in executor.component.counts.items():
            merged[word] = merged.get(word, 0) + count
    # New logic's output dominates the tail of the run.
    assert any(word.startswith("soak:") for word in merged)

    # The pipeline kept flowing through every phase (per-10s buckets).
    source_id = record.physical.worker_ids_for("source")[0]
    meter = cluster.metrics.meter("soak.source.%d.emitted" % source_id)
    for start in range(10, 90, 10):
        assert meter.rate(start, start + 10) > 500, \
            "stalled in window %d..%d" % (start, start + 10)

    # Global state remains consistent with the runtime.
    logical = cluster.state.read_logical("soak")
    physical = cluster.state.read_physical("soak")
    assert logical.node("split").parallelism == 3
    assert set(physical.assignments) == set(
        record.physical.assignments)
    for worker_id in physical.worker_ids_for("split"):
        executor = cluster.executor(worker_id)
        assert executor is not None and executor.alive

    # No unexpected switch-level loss outside the injected fault window.
    drops = sum(s.packets_dropped for s in cluster.fabric.switches())
    assert drops == 0

"""Smoke tests for the experiment implementations (fast paths only —
the full experiments run under benchmarks/)."""

import pytest

from repro.bench.figures import (
    _cluster,
    _exact_rate,
    _forwarding_run,
    table5_debugger,
)
from repro.sim import Engine
from repro.streaming import StormCluster, TopologyConfig
from repro.core import TyphoonCluster
from repro.workloads import forwarding_topology


def test_cluster_factory_dispatch():
    engine = Engine()
    assert isinstance(_cluster("storm", engine, 1), StormCluster)
    assert isinstance(_cluster("typhoon", Engine(), 1), TyphoonCluster)
    with pytest.raises(ValueError):
        _cluster("flink", Engine(), 1)


def test_exact_rate_measures_delta():
    engine = Engine()
    cluster = StormCluster(engine, num_hosts=1)
    cluster.submit(forwarding_topology(
        "fwd", TopologyConfig(max_spout_rate=1000)))
    rate = _exact_rate(engine, cluster, "fwd", "sink", 4.0, 6.0)
    assert rate == pytest.approx(1000, rel=0.1)


def test_forwarding_run_returns_expected_keys():
    run = _forwarding_run("storm", local=True, batch=100, acking=False)
    assert run["throughput"] > 0
    assert run["out_of_order"] == 0
    assert "latency_p50" not in run  # no acker -> no latency data


def test_table5_is_fast_and_complete():
    result = table5_debugger()
    rendered = result.render()
    assert "Typhoon" in rendered and "Storm" in rendered
    assert result.scalars["typhoon_dynamic"] == 1.0

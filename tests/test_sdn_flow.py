"""Unit tests for flow matches, actions and flow tables."""

import pytest

from repro.net import BROADCAST, TYPHOON_ETHERTYPE, EthernetFrame, WorkerAddress
from repro.sdn import FlowEntry, FlowTable, GroupAction, Match, Output, SetDlDst, SetTunnelDst


def frame(src=1, dst=2, app=1, ethertype=TYPHOON_ETHERTYPE, payload=b"p"):
    return EthernetFrame(
        dst=WorkerAddress(app, dst) if isinstance(dst, int) else dst,
        src=WorkerAddress(app, src),
        ethertype=ethertype, payload=payload,
    )


def test_exact_match_fields():
    match = Match(in_port=3, dl_src=WorkerAddress(1, 1),
                  dl_dst=WorkerAddress(1, 2), ether_type=TYPHOON_ETHERTYPE)
    assert match.matches(frame(1, 2), 3)
    assert not match.matches(frame(1, 2), 4)          # wrong in_port
    assert not match.matches(frame(9, 2), 3)          # wrong src
    assert not match.matches(frame(1, 9), 3)          # wrong dst
    assert not match.matches(frame(1, 2, ethertype=0x0800), 3)


def test_wildcard_match():
    match = Match()  # matches everything
    assert match.matches(frame(), 1)
    assert match.matches(frame(5, 6, ethertype=0x0800), 99)


def test_broadcast_destination_match():
    match = Match(dl_dst=BROADCAST)
    assert match.matches(frame(1, BROADCAST), 1)
    assert not match.matches(frame(1, 2), 1)


def test_match_covers():
    broad = Match(in_port=1)
    narrow = Match(in_port=1, dl_src=WorkerAddress(1, 1))
    assert broad.covers(narrow)
    assert not narrow.covers(broad)
    assert Match().covers(narrow)


def test_describe_is_readable():
    match = Match(in_port=2, ether_type=0xFFFF)
    description = match.describe()
    assert "in_port=2" in description
    assert "0xffff" in description
    assert Match().describe() == "any"


def test_table_priority_ordering():
    table = FlowTable()
    low = FlowEntry(Match(), (Output(1),), priority=10)
    high = FlowEntry(Match(in_port=1), (Output(2),), priority=200)
    table.add(low)
    table.add(high)
    hit = table.lookup(frame(), 1)
    assert hit is high
    # Frames not matching the high-priority rule fall through.
    assert table.lookup(frame(), 9) is low


def test_table_equal_priority_first_installed_wins():
    table = FlowTable()
    first = FlowEntry(Match(in_port=1), (Output(1),), priority=100)
    second = FlowEntry(Match(), (Output(2),), priority=100)
    table.add(first)
    table.add(second)
    assert table.lookup(frame(), 1) is first


def test_table_add_replaces_same_match_and_priority():
    table = FlowTable()
    table.add(FlowEntry(Match(in_port=1), (Output(1),), priority=100))
    table.add(FlowEntry(Match(in_port=1), (Output(5),), priority=100))
    assert len(table) == 1
    entry = table.lookup(frame(), 1)
    assert entry.actions == (Output(5),)


def test_table_nonstrict_delete_covers():
    table = FlowTable()
    table.add(FlowEntry(Match(in_port=1, dl_src=WorkerAddress(1, 1)),
                        (Output(1),)))
    table.add(FlowEntry(Match(in_port=1, dl_src=WorkerAddress(1, 2)),
                        (Output(2),)))
    table.add(FlowEntry(Match(in_port=2), (Output(3),)))
    removed = table.remove(Match(in_port=1))
    assert len(removed) == 2
    assert len(table) == 1


def test_table_strict_delete_respects_priority():
    table = FlowTable()
    base = FlowEntry(Match(in_port=1), (Output(1),), priority=100)
    mirror = FlowEntry(Match(in_port=1), (Output(1), Output(9)), priority=150)
    table.add(base)
    table.add(mirror)
    removed = table.remove(Match(in_port=1), strict=True, priority=150)
    assert removed == [mirror]
    assert len(table) == 1
    assert table.lookup(frame(), 1) is base


def test_idle_timeout_expiry():
    table = FlowTable()
    entry = FlowEntry(Match(in_port=1), (Output(1),), idle_timeout=5.0)
    table.add(entry, now=0.0)
    entry.touch(2.0, 100)
    assert table.expire_idle(6.9) == []
    expired = table.expire_idle(7.0)
    assert expired == [entry]
    assert len(table) == 0


def test_idle_timeout_uses_install_time_when_unused():
    table = FlowTable()
    entry = FlowEntry(Match(), (Output(1),), idle_timeout=3.0)
    table.add(entry, now=10.0)
    assert table.expire_idle(12.0) == []
    assert table.expire_idle(13.0) == [entry]


def test_counters_updated_on_touch():
    entry = FlowEntry(Match(), (Output(1),))
    entry.touch(1.0, 50)
    entry.touch(2.0, 70)
    assert entry.packets == 2
    assert entry.bytes == 120
    assert entry.last_used == 2.0


def test_referencing_port():
    table = FlowTable()
    by_input = FlowEntry(Match(in_port=7), (Output(1),))
    by_output = FlowEntry(Match(in_port=1), (SetTunnelDst("h"), Output(7)))
    unrelated = FlowEntry(Match(in_port=2), (Output(3),))
    for entry in (by_input, by_output, unrelated):
        table.add(entry)
    hits = table.referencing_port(7)
    assert by_input in hits and by_output in hits
    assert unrelated not in hits


def test_remove_by_cookie():
    table = FlowTable()
    table.add(FlowEntry(Match(in_port=1), (Output(1),), cookie=42))
    table.add(FlowEntry(Match(in_port=2), (Output(2),), cookie=7))
    removed = table.remove_by_cookie(42)
    assert len(removed) == 1
    assert len(table) == 1


def test_actions_are_immutable_dataclasses():
    assert Output(1) == Output(1)
    assert SetDlDst(WorkerAddress(1, 2)) == SetDlDst(WorkerAddress(1, 2))
    assert GroupAction(5) != GroupAction(6)
    with pytest.raises(Exception):
        Output(1).port = 2


# -- priority buckets (hot-path overhaul) ------------------------------------------


def test_buckets_keep_priorities_sorted_descending():
    table = FlowTable()
    for priority in (10, 200, 50, 150, 50, 10):
        table.add(FlowEntry(Match(in_port=priority), (Output(1),),
                            priority=priority))
    assert table._priorities == sorted(set((10, 200, 50, 150)),
                                       reverse=True)
    # Iteration walks priority groups high to low.
    seen = [entry.priority for entry in table]
    assert seen == sorted(seen, reverse=True)


def test_empty_buckets_are_pruned_on_removal():
    table = FlowTable()
    table.add(FlowEntry(Match(in_port=1), (Output(1),), priority=50))
    table.add(FlowEntry(Match(in_port=2), (Output(2),), priority=10))
    table.remove(Match(in_port=1), strict=True, priority=50)
    assert table._priorities == [10]
    assert 50 not in table._buckets
    # The pruned priority can be re-added cleanly.
    table.add(FlowEntry(Match(in_port=3), (Output(3),), priority=50))
    assert table._priorities == [50, 10]


def test_equal_priority_insertion_order_preserved_in_bucket():
    table = FlowTable()
    first = table.add(FlowEntry(Match(), (Output(1),), priority=5))
    second = table.add(FlowEntry(Match(in_port=1), (Output(2),), priority=5))
    # Both match in_port=1 frames; the first-installed entry wins.
    assert table.lookup(frame(), 1) is first
    assert list(table) == [first, second]


def test_replacement_keeps_bucket_slot():
    table = FlowTable()
    a = table.add(FlowEntry(Match(in_port=1), (Output(1),), priority=5))
    b = table.add(FlowEntry(Match(in_port=2), (Output(2),), priority=5))
    replacement = table.add(FlowEntry(Match(in_port=1), (Output(9),),
                                      priority=5))
    assert list(table) == [replacement, b]
    assert a not in list(table)


def test_miss_path_short_circuits_without_entries():
    table = FlowTable()
    assert table.lookup(frame(), 1) is None
    table.add(FlowEntry(Match(in_port=99), (Output(1),), priority=7))
    table.remove(Match(in_port=99), strict=True, priority=7)
    # Table fully drained: no buckets left to scan.
    assert table._buckets == {} and table._priorities == []
    assert table.lookup(frame(), 1) is None

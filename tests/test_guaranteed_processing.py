"""End-to-end guaranteed processing under failures (§6.1's reliability
mechanism actually exercised: loss -> timeout -> replay -> completion)."""

import pytest

from repro.core import TyphoonCluster
from repro.sim import Engine
from repro.streaming import (
    Bolt,
    Spout,
    StormCluster,
    TopologyBuilder,
    TopologyConfig,
)


class ReplaySpout(Spout):
    """At-least-once source: un-acked tuples are replayed on fail()."""

    def __init__(self, total=200):
        self.total = total
        self.next_seq = 0
        self.replay_queue = []
        self.acked = set()
        self.failed_count = 0

    def next_tuple(self, collector):
        if self.replay_queue:
            seq = self.replay_queue.pop(0)
            collector.emit(("payload", seq), message_id=seq)
            return
        if self.next_seq < self.total:
            collector.emit(("payload", self.next_seq),
                           message_id=self.next_seq)
            self.next_seq += 1

    def ack(self, message_id):
        self.acked.add(message_id)

    def fail(self, message_id):
        self.failed_count += 1
        if message_id not in self.acked:
            self.replay_queue.append(message_id)


class DropOnceSink(Bolt):
    """Crashes once mid-stream: queued tuples die with the worker.

    ``seen`` is class-level so it spans the pre-crash instance and the
    supervisor-restarted replacement.
    """

    crashed = []
    seen = set()

    def execute(self, stream_tuple, collector):
        if not DropOnceSink.crashed and stream_tuple[1] == 50:
            DropOnceSink.crashed.append(True)
            raise RuntimeError("sink died")
        DropOnceSink.seen.add(stream_tuple[1])


@pytest.mark.parametrize("cluster_class", [StormCluster, TyphoonCluster])
def test_loss_triggers_timeout_and_replay_completes(cluster_class):
    DropOnceSink.crashed = []
    DropOnceSink.seen = set()
    engine = Engine()
    cluster = cluster_class(engine, num_hosts=1, seed=3)
    config = TopologyConfig(acking=True, num_ackers=1, tuple_timeout=3.0,
                            batch_size=10, max_spout_rate=200)
    builder = TopologyBuilder("reliable", config)
    spout = ReplaySpout(total=200)
    builder.set_spout("source", lambda: spout, 1, max_pending=20)
    builder.set_bolt("sink", DropOnceSink, 1).shuffle_grouping("source")
    cluster.submit(builder.build())
    engine.run(until=40.0)
    # The crash lost in-flight tuples; timeouts fired and they were
    # replayed, so every sequence number was eventually processed.
    assert spout.failed_count > 0
    assert DropOnceSink.seen == set(range(200))
    # And eventually every root completed (at-least-once delivery).
    assert spout.acked == set(range(200))


@pytest.mark.parametrize("cluster_class", [StormCluster, TyphoonCluster])
def test_no_failures_means_no_replays(cluster_class):
    engine = Engine()
    cluster = cluster_class(engine, num_hosts=1, seed=4)
    config = TopologyConfig(acking=True, num_ackers=1, tuple_timeout=5.0,
                            batch_size=10, max_spout_rate=500)
    builder = TopologyBuilder("clean", config)
    spout = ReplaySpout(total=300)

    class CountSink(Bolt):
        def __init__(self):
            self.count = 0

        def execute(self, stream_tuple, collector):
            self.count += 1

    builder.set_spout("source", lambda: spout, 1, max_pending=50)
    builder.set_bolt("sink", CountSink, 1).shuffle_grouping("source")
    cluster.submit(builder.build())
    engine.run(until=20.0)
    assert spout.failed_count == 0
    assert spout.acked == set(range(300))
    sink = cluster.executors_for("clean", "sink")[0]
    assert sink.component.count == 300  # exactly once when nothing fails

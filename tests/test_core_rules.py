"""Unit tests for Table 3 flow-rule templates."""

from repro.core import rules
from repro.net import (
    BROADCAST,
    CONTROLLER_ADDRESS,
    TYPHOON_ETHERTYPE,
    EthernetFrame,
    WorkerAddress,
)
from repro.sdn import OFPP_CONTROLLER, Output, SetTunnelDst


def frame(app, src, dst):
    return EthernetFrame(dst=dst if isinstance(dst, WorkerAddress)
                         else WorkerAddress(app, dst),
                         src=WorkerAddress(app, src),
                         ethertype=TYPHOON_ETHERTYPE, payload=b"p")


def test_local_transfer_row():
    match, actions = rules.local_transfer(1, 10, 3, 11, 4)
    assert match.matches(frame(1, 10, 11), 3)
    assert not match.matches(frame(1, 10, 12), 3)
    assert not match.matches(frame(2, 10, 11), 3)  # other application
    assert actions == (Output(4),)
    assert match.ether_type == TYPHOON_ETHERTYPE


def test_remote_transfer_rows():
    send_match, send_actions = rules.remote_transfer_sender(
        1, 10, 3, 11, "host-b", 99)
    assert send_actions == (SetTunnelDst("host-b"), Output(99))
    assert send_match.matches(frame(1, 10, 11), 3)

    recv_match, recv_actions = rules.remote_transfer_receiver(1, 10, 11, 7, 4)
    assert recv_match.in_port == 7
    assert recv_actions == (Output(4),)
    assert recv_match.matches(frame(1, 10, 11), 7)
    # Receiver row omits ether_type (Table 3) but pins src and dst.
    assert recv_match.ether_type is None


def test_one_to_many_row_replicates_locally_and_remotely():
    match, actions = rules.one_to_many(3, [4, 5], ["host-b", "host-c"], 99)
    assert match.dl_dst == BROADCAST
    assert match.matches(frame(1, 10, BROADCAST), 3)
    assert actions == (
        Output(4), Output(5),
        SetTunnelDst("host-b"), Output(99),
        SetTunnelDst("host-c"), Output(99),
    )


def test_one_to_many_receiver_row():
    match, actions = rules.one_to_many_receiver(1, 10, 7, [4, 5])
    assert match.in_port == 7
    assert match.dl_src == WorkerAddress(1, 10)
    assert actions == (Output(4), Output(5))


def test_worker_to_controller_row():
    match, actions = rules.worker_to_controller(3)
    assert match.dl_dst == CONTROLLER_ADDRESS
    assert actions == (Output(OFPP_CONTROLLER),)
    assert match.matches(frame(1, 10, CONTROLLER_ADDRESS), 3)
    assert not match.matches(frame(1, 10, 11), 3)


def test_mirror_rule_appends_debug_output():
    base_match, base_actions = rules.local_transfer(1, 10, 3, 11, 4)
    match, actions = rules.mirror_rule(base_match, base_actions, 66)
    assert match == base_match
    assert actions == (Output(4), Output(66))


def test_select_address_deterministic_and_distinct():
    a1 = rules.select_address(1, "sink", 0)
    a2 = rules.select_address(1, "sink", 0)
    b = rules.select_address(1, "other", 0)
    c = rules.select_address(1, "sink", 1)
    assert a1 == a2
    assert a1 != b
    assert a1 != c
    assert a1.app_id == 1
    # Stays clear of the real-worker id space prefix.
    assert a1.worker_id >= 0xE0000000


def test_priorities_are_ordered():
    assert rules.PRIORITY_CONTROL > rules.PRIORITY_UNICAST
    assert rules.PRIORITY_UNICAST > rules.PRIORITY_BROADCAST

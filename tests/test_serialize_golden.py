"""Golden-bytes and allocation-regression tests for the tuple codec.

The hot-path overhaul rewrote encode/decode for speed; these tests pin
the wire format byte for byte (the hex literals below were produced by
the pre-optimization encoder) and guard the zero-temporary encoding
discipline against regression.
"""

import sys

import pytest

from repro.bench.legacy import legacy_decode_tuple, legacy_encode_tuple
from repro.bench.perf import codec_corpus
from repro.streaming.serialize import (
    SerializationError,
    decode_tuple,
    encode_tuple,
)
from repro.streaming.tuples import Anchor, StreamTuple

#: Fixed corpus covering every type tag, the anchored and traced
#: envelope variants, positive/negative big ints, nesting, unicode and
#: the empty tuple. The hex is the byte-exact pre-optimization output.
GOLDEN = [
    ("plain_all_scalars",
     StreamTuple((None, True, False, 42, -1.5, "hi", b"\x00\xff"),
                 stream=3, source_worker=9),
     "00030000000900000700010203000000000000002a04bff8000000000000"
     "05000000026869060000000200ff"),
    ("anchored",
     StreamTuple(("word", 7), stream=1, source_worker=2,
                 anchor=Anchor(0x1122334455667788, 0x99AABBCC)),
     "00010000000201000211223344556677880000000099aabbcc0500000004"
     "776f7264030000000000000007"),
    ("traced",
     StreamTuple((3.14,), stream=0, source_worker=-1,
                 trace_id=0xDEADBEEFCAFE),
     "0000ffffffff0200010000deadbeefcafe0440091eb851eb851f"),
    ("anchored_traced_bigint",
     StreamTuple((2 ** 64 + 5, -(2 ** 70)), stream=65535,
                 source_worker=123456, anchor=Anchor(1, 2), trace_id=99),
     "ffff0001e240030002000000000000000100000000000000020000000000"
     "000063090000000009010000000000000005090100000009400000000000"
     "000000"),
    ("nested",
     StreamTuple(([1, "two", [None, True]],
                  {"k": [2.5, b"z"], "n": {"deep": False}}),
                 stream=7, source_worker=0),
     "000700000000000002070000000303000000000000000105000000037477"
     "6f07000000020001080000000205000000016b0700000002044004000000"
     "00000006000000017a05000000016e080000000105000000046465657002"),
    ("unicode",
     StreamTuple(("東京", "straße"), stream=2, source_worker=4),
     "0002000000040000020500000006e69db1e4baac050000000773747261c3"
     "9f65"),
    ("empty_values",
     StreamTuple((), stream=5, source_worker=6),
     "000500000006000000"),
]


#: Sequenced envelopes (active replication, flag 0x04): epoch ``!I`` +
#: sequence ``!Q`` appended after the anchor and trace sections. Kept
#: out of GOLDEN on purpose — the legacy pre-optimization codec predates
#: replication, so these frames must never enter the legacy-reference
#: test; conversely every non-sequenced envelope above must stay byte
#: identical with the sequencer feature present.
SEQUENCED_GOLDEN = [
    ("seq_zero",
     StreamTuple(("word", 7), stream=1, source_worker=2, seq=(0, 0)),
     "0001000000020400020000000000000000000000000500000004776f7264"
     "030000000000000007"),
    ("seq_epoch_bump",
     StreamTuple(("word", 7), stream=1, source_worker=2,
                 seq=(3, 0x0102030405060708)),
     "0001000000020400020000000301020304050607080500000004776f7264"
     "030000000000000007"),
    ("seq_anchored_traced",
     StreamTuple((2.5,), stream=9, source_worker=11,
                 anchor=Anchor(0x1122334455667788, 0x99AABBCC),
                 trace_id=0xDEADBEEFCAFE, seq=(0xFFFFFFFF, 2 ** 64 - 1)),
     "00090000000b07000111223344556677880000000099aabbcc0000deadbe"
     "efcafeffffffffffffffffffffffff044004000000000000"),
    ("seq_empty_values",
     StreamTuple((), stream=0, source_worker=0, seq=(1, 2)),
     "000000000000040000000000010000000000000002"),
]


@pytest.mark.parametrize("name,stream_tuple,expected_hex",
                         GOLDEN, ids=[g[0] for g in GOLDEN])
def test_golden_bytes_encode(name, stream_tuple, expected_hex):
    assert encode_tuple(stream_tuple).hex() == expected_hex


@pytest.mark.parametrize("name,stream_tuple,expected_hex",
                         SEQUENCED_GOLDEN,
                         ids=[g[0] for g in SEQUENCED_GOLDEN])
def test_sequenced_golden_bytes(name, stream_tuple, expected_hex):
    """Lock the replication wire format: epoch+seq live after anchor and
    trace, under their own flag bit, and round-trip exactly."""
    assert encode_tuple(stream_tuple).hex() == expected_hex
    decoded = decode_tuple(bytes.fromhex(expected_hex))
    assert decoded.seq == stream_tuple.seq
    assert decoded.stream == stream_tuple.stream
    assert decoded.anchor == stream_tuple.anchor
    assert decoded.trace_id == stream_tuple.trace_id
    assert decoded.values == stream_tuple.values


def test_sequenced_flag_is_additive():
    """A sequenced frame is its unsequenced twin plus the flag bit and
    exactly 12 bytes of epoch+seq — nothing else moves."""
    for _name, st, _hex in SEQUENCED_GOLDEN:
        plain = st.with_values(st.values)
        plain.seq = None
        base = bytearray(encode_tuple(plain))
        seq = encode_tuple(st)
        assert len(seq) == len(base) + 12
        flags_at = 6  # after stream u16 + source_worker i32
        assert seq[flags_at] == base[flags_at] | 0x04
        base[flags_at] = seq[flags_at]
        insert_at = flags_at + 3  # flags u8 + value-count u16
        if st.anchor is not None:
            insert_at += 16  # root id u64 + anchor id u64
        if st.trace_id is not None:
            insert_at += 8
        assert seq == bytes(base[:insert_at]) + seq[insert_at:insert_at + 12] \
            + bytes(base[insert_at:])


@pytest.mark.parametrize("name,stream_tuple,expected_hex",
                         GOLDEN, ids=[g[0] for g in GOLDEN])
def test_golden_bytes_decode(name, stream_tuple, expected_hex):
    decoded = decode_tuple(bytes.fromhex(expected_hex))
    assert decoded.stream == stream_tuple.stream
    assert decoded.source_worker == stream_tuple.source_worker
    assert decoded.anchor == stream_tuple.anchor
    assert decoded.trace_id == stream_tuple.trace_id
    # Lists come back as lists (the codec does not distinguish
    # list/tuple on the wire) — normalize for comparison.
    assert decoded.values == tuple(
        list(v) if isinstance(v, (list, tuple)) else v
        for v in stream_tuple.values)


@pytest.mark.parametrize("name,stream_tuple,expected_hex",
                         GOLDEN, ids=[g[0] for g in GOLDEN])
def test_golden_matches_legacy_reference(name, stream_tuple, expected_hex):
    """The committed hex really is the pre-optimization output, and the
    legacy decoder accepts the optimized encoder's bytes."""
    assert legacy_encode_tuple(stream_tuple).hex() == expected_hex
    assert legacy_decode_tuple(encode_tuple(stream_tuple)) \
        == decode_tuple(bytes.fromhex(expected_hex))


def test_randomized_corpus_matches_legacy():
    for seed in (0, 1, 2):
        for st in codec_corpus(seed):
            data = encode_tuple(st)
            assert data == legacy_encode_tuple(st)
            assert decode_tuple(data) == legacy_decode_tuple(data)


def test_decode_accepts_memoryview_and_bytearray():
    for _name, st, expected_hex in GOLDEN:
        data = bytes.fromhex(expected_hex)
        assert decode_tuple(memoryview(data)) == decode_tuple(data)
        assert decode_tuple(bytearray(data)) == decode_tuple(data)


def test_truncated_fixed_header_rejected():
    data = encode_tuple(GOLDEN[3][1])  # anchored + traced
    for cut in (10, 20, 30):
        with pytest.raises(SerializationError):
            decode_tuple(data[:cut])


def _profile_c_calls(func, names):
    """Run ``func`` and return how often each C function in ``names``
    was called (catches ``Struct.pack`` / ``join`` at the interpreter
    level, immune to how the module binds its helpers)."""
    counts = {name: 0 for name in names}

    def profiler(frame, event, arg):
        if event == "c_call":
            name = getattr(arg, "__name__", "")
            if name in counts:
                counts[name] += 1

    sys.setprofile(profiler)
    try:
        func()
    finally:
        sys.setprofile(None)
    return counts


def test_encode_allocation_regression_no_struct_pack_or_join():
    """The optimized encoder writes every fixed-width field in place
    with ``pack_into``: ``Struct.pack`` (a fresh bytes per value) and
    ``join`` (a gather pass over per-value chunks) must never run."""
    corpus = [st for _n, st, _h in GOLDEN] + codec_corpus(0)

    def run():
        for st in corpus:
            encode_tuple(st)

    counts = _profile_c_calls(run, ("pack", "join"))
    assert counts == {"pack": 0, "join": 0}

    # Sanity check on the instrument itself: the legacy encoder *does*
    # call both, so a silent profiler failure cannot fake a pass.
    def run_legacy():
        for st in corpus:
            legacy_encode_tuple(st)

    legacy_counts = _profile_c_calls(run_legacy, ("pack", "join"))
    assert legacy_counts["pack"] > 0
    assert legacy_counts["join"] > 0

"""Unit tests for the Typhoon SDN controller app (rule generation,
port discovery, control-tuple injection)."""

import pytest

from repro.core import TyphoonCluster, control as ct
from repro.core.controller import _worker_of_port
from repro.net import BROADCAST, CONTROLLER_ADDRESS
from repro.sdn.flow import Output, SetTunnelDst
from repro.sim import Engine
from repro.streaming import TopologyBuilder, TopologyConfig
from tests.conftest import CountingSpout, RecordingBolt, simple_chain


def test_worker_of_port_parsing():
    assert _worker_of_port("w17") == 17
    assert _worker_of_port("tunnel") is None
    assert _worker_of_port("wabc") is None
    assert _worker_of_port("") is None


def deploy(engine, topology, hosts=2):
    cluster = TyphoonCluster(engine, num_hosts=hosts)
    cluster.submit(topology)
    engine.run(until=3.0)
    return cluster


def test_port_discovery_tracks_workers(engine):
    cluster = deploy(engine, simple_chain(
        config=TopologyConfig(max_spout_rate=100)))
    record = cluster.manager.topologies["chain"]
    for worker_id in record.physical.assignments:
        assert worker_id in cluster.app.worker_host
        dpid = cluster.app.worker_host[worker_id]
        assert (dpid, worker_id) in cluster.app.port_map


def test_rules_respect_locality(engine):
    builder = TopologyBuilder("r", TopologyConfig(max_spout_rate=100))
    builder.set_spout("source", lambda: CountingSpout(None), 1)
    builder.set_bolt("sink", RecordingBolt, 3).shuffle_grouping("source")
    cluster = deploy(engine, builder.build(), hosts=2)
    installed = cluster.app._installed["r"]
    record = cluster.manager.topologies["r"]
    source_host = record.physical.workers_for("source")[0].hostname
    for (dpid, match), (priority, actions) in installed.items():
        if match.dl_dst is not None and match.dl_dst.is_broadcast:
            continue
        if match.in_port == cluster.fabric.host(dpid).tunnel_port:
            # Receiver-side rule: output must be a local worker port.
            assert isinstance(actions[-1], Output)
        elif any(isinstance(a, SetTunnelDst) for a in actions):
            # Sender-side remote rule originates at the source host.
            assert dpid == source_host


def test_sync_is_idempotent(engine):
    cluster = deploy(engine, simple_chain(
        config=TopologyConfig(max_spout_rate=100)))
    installed_before = dict(cluster.app._installed["chain"])
    rules_before = cluster.app.rules_installed
    cluster.app.sync_topology("chain")
    engine.run(until=4.0)
    assert cluster.app._installed["chain"] == installed_before
    assert cluster.app.rules_installed == rules_before


def test_unmanage_removes_rules(engine):
    cluster = deploy(engine, simple_chain(
        config=TopologyConfig(max_spout_rate=100)))
    assert cluster.app._installed["chain"]
    removed_before = cluster.app.rules_removed
    cluster.app.unmanage("chain")
    engine.run(until=4.0)
    assert "chain" not in cluster.app._installed
    assert cluster.app.rules_removed > removed_before


def test_send_control_unknown_worker_returns_false(engine):
    cluster = deploy(engine, simple_chain(
        config=TopologyConfig(max_spout_rate=100)))
    assert not cluster.app.send_control("chain", 9999, ct.signal())
    assert not cluster.app.send_control("ghost", 1, ct.signal())


def test_metric_query_times_out_with_partial_results(engine):
    cluster = deploy(engine, simple_chain(
        config=TopologyConfig(max_spout_rate=100)))
    record = cluster.manager.topologies["chain"]
    real = record.physical.worker_ids_for("sink")[0]
    gate = cluster.app.query_metrics("chain", [real, 4242], timeout=1.0)
    engine.run(until=5.0)
    assert gate.triggered
    replies = gate.value
    assert real in replies
    assert 4242 not in replies


def test_routing_update_creates_new_edge(engine):
    cluster = deploy(engine, simple_chain(
        config=TopologyConfig(max_spout_rate=100)))
    record = cluster.manager.topologies["chain"]
    source_id = record.physical.worker_ids_for("source")[0]
    cluster.app.update_routing("chain", source_id, [ct.RoutingUpdate(
        dst_component="extra", stream=5, next_hops=[77],
        grouping_kind="global")])
    engine.run(until=4.0)
    source = cluster.executor(source_id)
    assert ("extra", 5) in source.routers
    # Empty next hops removes the edge again.
    cluster.app.update_routing("chain", source_id, [ct.RoutingUpdate(
        dst_component="extra", stream=5, next_hops=[])])
    engine.run(until=5.0)
    assert ("extra", 5) not in source.routers


def test_broadcast_rules_cover_remote_hosts(engine):
    builder = TopologyBuilder("bc", TopologyConfig(max_spout_rate=100))
    builder.set_spout("source", lambda: CountingSpout(None), 1)
    builder.set_bolt("sink", RecordingBolt, 4).all_grouping("source")
    cluster = deploy(engine, builder.build(), hosts=2)
    installed = cluster.app._installed["bc"]
    broadcast_rules = [
        (dpid, match, actions)
        for (dpid, match), (_prio, actions) in installed.items()
        if match.dl_dst is not None and match.dl_dst.is_broadcast
    ]
    # One sender-side one-to-many rule plus receiver rules on the other
    # host (the 5 workers split across 2 hosts with locality scheduling).
    assert len(broadcast_rules) >= 2
    sender_rules = [r for r in broadcast_rules
                    if any(isinstance(a, SetTunnelDst) for a in r[2])]
    assert sender_rules  # remote replication goes through the tunnel

"""Integration tests for the Typhoon runtime (deployment §3.2, control
tuples §3.3.2, SDN data plane §3.4)."""

import pytest

from repro.core import TyphoonCluster, control as ct
from repro.core.io_layer import TyphoonTransport
from repro.sim import DEFAULT_COSTS, Engine
from repro.streaming import (
    ACKER_COMPONENT,
    TopologyBuilder,
    TopologyConfig,
)
from tests.conftest import CountingSpout, ForwardingBolt, RecordingBolt, simple_chain


def run_chain(limit=500, until=10.0, config=None, sinks=1, hosts=2):
    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=hosts)
    cluster.submit(simple_chain(limit=limit, config=config,
                                sink_parallelism=sinks))
    engine.run(until=until)
    return engine, cluster


def test_end_to_end_delivery_exactly_once():
    engine, cluster = run_chain(limit=500)
    sink = cluster.executors_for("chain", "sink")[0]
    assert sink.stats.processed == 500
    assert sorted(v[1] for v in sink.component.received) == list(range(500))


def test_flow_rules_installed_per_table3():
    engine, cluster = run_chain(limit=10, hosts=1)
    switch = cluster.fabric.switches()[0]
    descriptions = [entry.describe() for entry in switch.flows]
    # worker-to-controller rules for both workers + one unicast rule.
    assert len(descriptions) >= 3
    installed = cluster.app._installed["chain"]
    assert len(installed) == 1  # one data edge, both workers local


def test_remote_transfer_uses_tunnel():
    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=2)
    builder = TopologyBuilder("remote", TopologyConfig())
    builder.set_spout("source", lambda: CountingSpout(300), 1)
    builder.set_bolt("sink", RecordingBolt, 2).shuffle_grouping("source")
    cluster.submit(builder.build())
    engine.run(until=10.0)
    sinks = cluster.executors_for("remote", "sink")
    assert sum(s.stats.processed for s in sinks) == 300
    # With the locality scheduler 3 workers split across 2 hosts, so at
    # least one hop is remote: tunnels must have carried bytes.
    total_tunnel_bytes = sum(
        tunnel.total_bytes
        for fabric in cluster.fabric.hosts.values()
        for tunnel in fabric.tunnels.values()
    )
    assert total_tunnel_bytes > 0


def test_broadcast_single_serialization():
    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=1)
    builder = TopologyBuilder("bc", TopologyConfig())
    builder.set_spout("source", lambda: CountingSpout(100), 1)
    builder.set_bolt("sink", RecordingBolt, 4).all_grouping("source")
    cluster.submit(builder.build())
    engine.run(until=10.0)
    record = cluster.manager.topologies["bc"]
    source_id = record.physical.worker_ids_for("bc" and "source")[0]
    transport = cluster.transports[source_id]
    # One serialization per tuple regardless of four destinations.
    assert transport.serializations == 100
    sinks = cluster.executors_for("bc", "sink")
    assert [s.stats.processed for s in sinks] == [100, 100, 100, 100]


def test_acking_over_sdn_paths():
    config = TopologyConfig(acking=True, num_ackers=1)
    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=2)
    builder = TopologyBuilder("acked", config)
    builder.set_spout("source", lambda: CountingSpout(200), 1,
                      max_pending=50)
    builder.set_bolt("mid", ForwardingBolt, 1).shuffle_grouping("source")
    builder.set_bolt("sink", RecordingBolt, 1).shuffle_grouping("mid")
    cluster.submit(builder.build())
    engine.run(until=20.0)
    acker = cluster.executors_for("acked", ACKER_COMPONENT)[0]
    source = cluster.executors_for("acked", "source")[0]
    assert acker.component.completed == 200
    assert not source.pending_roots
    assert len(source.latency_dist) == 200


def test_metric_req_resp_roundtrip():
    engine, cluster = run_chain(limit=100, until=5.0)
    record = cluster.manager.topologies["chain"]
    worker_ids = record.physical.worker_ids_for("sink")
    gate = cluster.app.query_metrics("chain", worker_ids, timeout=2.0)
    engine.run(until=8.0)
    assert gate.triggered
    stats = gate.value
    assert stats[worker_ids[0]]["processed"] == 100
    assert cluster.app.latest_metrics[worker_ids[0]]["processed"] == 100


def test_deactivate_activate_via_control_tuples():
    config = TopologyConfig(max_spout_rate=5000)
    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=1)
    cluster.submit(simple_chain("toggle", limit=None, config=config))
    engine.run(until=5.0)
    source = cluster.executors_for("toggle", "source")[0]
    emitted_before_pause = source.stats.emitted
    assert emitted_before_pause > 0
    cluster.deactivate("toggle")
    engine.run(until=6.0)
    paused_at = source.stats.emitted
    engine.run(until=10.0)
    assert source.stats.emitted == paused_at  # no emission while paused
    assert not source.active
    cluster.activate("toggle")
    engine.run(until=12.0)
    assert source.stats.emitted > paused_at
    assert source.active


def test_input_rate_control_tuple():
    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=1)
    cluster.submit(simple_chain("rated", limit=None,
                                config=TopologyConfig(max_spout_rate=10000)))
    engine.run(until=3.0)
    cluster.set_input_rate("rated", 1000)
    engine.run(until=4.0)
    source = cluster.executors_for("rated", "source")[0]
    start = source.stats.emitted
    engine.run(until=9.0)
    emitted = source.stats.emitted - start
    assert emitted == pytest.approx(5000, rel=0.1)


def test_batch_size_control_tuple():
    engine, cluster = run_chain(limit=100, until=5.0)
    record = cluster.manager.topologies["chain"]
    source_id = record.physical.worker_ids_for("source")[0]
    cluster.set_batch_size("chain", 17)
    engine.run(until=6.0)
    transport = cluster.transports[source_id]
    assert transport.batch_size == 17
    assert cluster.executor(source_id)._emit_batch == 17


def test_signal_flushes_stateful_worker():
    from repro.workloads import word_count_topology
    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=1)
    config = TopologyConfig(max_spout_rate=2000)
    cluster.submit(word_count_topology("wc", config, splits=1, counts=1))
    engine.run(until=5.0)
    count = cluster.executors_for("wc", "count")[0]
    assert count.component.counts  # cache populated
    worker_id = count.worker_id
    # Quiesce the source so nothing refills the cache after the flush.
    cluster.deactivate("wc")
    engine.run(until=6.0)
    cluster.app.send_signal("wc", worker_id)
    engine.run(until=7.0)
    assert count.component.flushes == 1
    assert not count.component.counts  # cache cleared


def test_kill_topology_cleans_rules_and_ports():
    engine, cluster = run_chain(limit=None, until=3.0,
                                config=TopologyConfig(max_spout_rate=1000))
    cluster.kill_topology("chain")
    engine.run(until=5.0)
    assert cluster.app._installed.get("chain") is None
    # All worker ports removed from every switch.
    for fabric in cluster.fabric.hosts.values():
        worker_ports = [p for p in fabric.switch.ports.values()
                        if p.kind == "worker"]
        assert worker_ports == []


def test_crash_removes_port_and_triggers_port_status():
    crashed = []

    class CrashAt50(RecordingBolt):
        def execute(self, stream_tuple, collector):
            super().execute(stream_tuple, collector)
            if len(self.received) == 50 and not crashed:
                crashed.append(True)
                raise RuntimeError("boom")

    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=1)
    builder = TopologyBuilder("crashy", TopologyConfig(max_spout_rate=500))
    builder.set_spout("source", lambda: CountingSpout(None), 1)
    builder.set_bolt("sink", CrashAt50, 1).shuffle_grouping("source")
    cluster.submit(builder.build())
    engine.run(until=10.0)
    # The supervisor restarted the worker and its port reappeared.
    record = cluster.manager.topologies["crashy"]
    sink_id = record.physical.worker_ids_for("sink")[0]
    assert sink_id in cluster.app.worker_host
    sink = cluster.executor(sink_id)
    assert sink is not None and sink.alive
    restarts = sum(a.restarts for a in cluster.manager.agents.values())
    assert restarts >= 1

"""Multiple applications sharing one Typhoon cluster.

The application-ID prefix in worker addresses (§3.3.1) exists precisely
so several stream applications can share switches without interfering;
these tests run two topologies side by side and check isolation,
independent reconfiguration, and clean teardown of one without the
other noticing.
"""

import pytest

from repro.core import TyphoonCluster
from repro.sim import Engine
from repro.streaming import TopologyConfig
from tests.conftest import simple_chain


def start_two():
    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=2, seed=0)
    config_a = TopologyConfig(batch_size=50, max_spout_rate=800)
    config_b = TopologyConfig(batch_size=50, max_spout_rate=400)
    physical_a = cluster.submit(simple_chain("app-a", config=config_a))
    physical_b = cluster.submit(simple_chain("app-b", config=config_b,
                                             sink_parallelism=2))
    engine.run(until=10.0)
    return engine, cluster, physical_a, physical_b


def test_distinct_app_ids_and_worker_ids():
    engine, cluster, physical_a, physical_b = start_two()
    assert physical_a.app_id != physical_b.app_id
    assert set(physical_a.assignments).isdisjoint(physical_b.assignments)


def test_both_topologies_flow_at_their_own_rates():
    engine, cluster, _a, _b = start_two()
    sink_a = cluster.executors_for("app-a", "sink")[0]
    rate_a = sink_a.processed_meter.rate(5, 9)
    rate_b = sum(s.processed_meter.rate(5, 9)
                 for s in cluster.executors_for("app-b", "sink"))
    assert rate_a == pytest.approx(800, rel=0.1)
    assert rate_b == pytest.approx(400, rel=0.1)


def test_rules_are_app_scoped():
    engine, cluster, physical_a, physical_b = start_two()
    for topology_id, physical in (("app-a", physical_a),
                                  ("app-b", physical_b)):
        for (_dpid, match), _value in cluster.app._installed[topology_id].items():
            if match.dl_src is not None and not match.dl_src.is_broadcast:
                assert match.dl_src.app_id == physical.app_id


def test_no_cross_topology_delivery():
    engine, cluster, _a, _b = start_two()
    # Every tuple a sink saw originates from its own topology's source.
    record_a = cluster.manager.topologies["app-a"]
    source_a = record_a.physical.worker_ids_for("source")[0]
    sink_a = cluster.executors_for("app-a", "sink")[0]
    for values in sink_a.component.received[:50]:
        assert values[0] == "x"  # CountingSpout payload
    # Worker-level receive counters match their own stream only.
    assert sink_a.stats.processed > 0


def test_reconfigure_one_without_touching_other():
    engine, cluster, _a, _b = start_two()
    before = cluster.executors_for("app-a", "sink")[0].stats.processed
    cluster.set_parallelism("app-b", "sink", 3)
    engine.run(until=25.0)
    assert len(cluster.executors_for("app-b", "sink")) == 3
    assert len(cluster.executors_for("app-a", "sink")) == 1
    sink_a = cluster.executors_for("app-a", "sink")[0]
    assert sink_a.processed_meter.rate(20, 24) == pytest.approx(800, rel=0.1)


def test_kill_one_topology_leaves_other_running():
    engine, cluster, _a, _b = start_two()
    cluster.kill_topology("app-b")
    engine.run(until=20.0)
    assert cluster.executors_for("app-b", "sink") == []
    sink_a = cluster.executors_for("app-a", "sink")[0]
    assert sink_a.alive
    assert sink_a.processed_meter.rate(15, 19) == pytest.approx(800, rel=0.1)
    # app-b's rules are gone; app-a's remain.
    assert cluster.app._installed.get("app-b") is None
    assert cluster.app._installed["app-a"]

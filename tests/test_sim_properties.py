"""Property-based tests on kernel invariants (determinism, causality,
queue conservation) under randomized workloads."""

from hypothesis import given, settings, strategies as st

from repro.sim import Engine, Store


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.floats(min_value=0.001, max_value=10),
                          st.integers(0, 5)),
                min_size=1, max_size=30))
def test_events_fire_in_nondecreasing_time_order(jobs):
    engine = Engine()
    fired = []
    for delay, payload in jobs:
        engine.schedule(delay, lambda p=payload: fired.append(
            (engine.now, p)))
    engine.run()
    times = [t for t, _p in fired]
    assert times == sorted(times)
    assert len(fired) == len(jobs)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=0.01, max_value=5),
                min_size=1, max_size=15),
       st.integers(1, 5))
def test_process_sleep_times_accumulate(delays, repeat):
    engine = Engine()
    wakeups = []

    def sleeper():
        for delay in delays:
            yield delay
            wakeups.append(engine.now)

    engine.process(sleeper())
    engine.run()
    expected = 0.0
    for delay, at in zip(delays, wakeups):
        expected += delay
        assert abs(at - expected) < 1e-9


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 1000), max_size=50))
def test_store_is_fifo_and_conserving(items):
    engine = Engine()
    store = Store(engine)
    received = []

    def consumer():
        for _ in range(len(items)):
            value = yield store.get()
            received.append(value)

    engine.process(consumer())
    for index, item in enumerate(items):
        engine.schedule(0.001 * (index + 1), store.put, item)
    engine.run()
    assert received == items


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 20), st.integers(1, 10))
def test_bounded_store_never_exceeds_capacity(count, capacity):
    engine = Engine()
    store = Store(engine, capacity=capacity)
    accepted = sum(1 for _ in range(count) if store.put("x") is True)
    assert accepted == min(count, capacity)
    assert len(store) <= capacity
    assert store.drop_count == max(0, count - capacity)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(st.sampled_from("abc"),
                          st.floats(min_value=0.01, max_value=3)),
                min_size=2, max_size=20))
def test_multi_process_interleaving_deterministic(spec):
    def run_once():
        engine = Engine()
        log = []

        def worker(tag, delay):
            for step in range(3):
                yield delay
                log.append((round(engine.now, 9), tag, step))

        for tag, delay in spec:
            engine.process(worker(tag, delay))
        engine.run()
        return log

    assert run_once() == run_once()

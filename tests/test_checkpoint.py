"""Checkpoint/restore for stateful workers: store unit tests plus the
headline equivalence property — a crashed-and-restored run ends with
exactly the state a fault-free run of the same seed produces."""

import pytest

from repro.core import TyphoonCluster
from repro.sim import Engine
from repro.sim.faults import kill_worker_at
from repro.streaming import (
    CHECKPOINT_SERVICE,
    Bolt,
    CheckpointStore,
    Spout,
    StormCluster,
    TopologyBuilder,
    TopologyConfig,
)


# -- unit: CheckpointStore ---------------------------------------------------


def test_snapshots_are_isolated_from_live_state():
    store = CheckpointStore()
    state = {"a": [1, 2]}
    store.save(7, state, now=1.0)
    state["a"].append(3)  # live mutation must not reach the snapshot
    restored = store.load(7)
    assert restored == {"a": [1, 2]}
    restored["a"].append(99)  # nor the other way around
    assert store.load(7) == {"a": [1, 2]}


def test_store_bookkeeping():
    store = CheckpointStore()
    assert store.load(1) is None and not store.has(1)
    store.save(1, {"n": 1}, now=0.5)
    store.save(1, {"n": 2}, now=1.5)  # overwrite, same worker
    assert store.has(1) and store.time_of(1) == 1.5
    assert store.load(1) == {"n": 2}
    assert store.stats() == {"workers": 1, "saves": 2, "restores": 1}
    store.discard(1)
    assert not store.has(1) and store.load(1) is None


# -- end-to-end: crash, restore, equivalence ---------------------------------


class KeyedSpout(Spout):
    """Deterministic keyed stream: (key, seq) for seq in range(limit)."""

    def __init__(self, limit):
        self.limit = limit
        self.seq = 0

    def next_tuple(self, collector):
        if self.seq >= self.limit:
            return
        collector.emit(("k%d" % (self.seq % 5), self.seq),
                       message_id=self.seq)
        self.seq += 1


class CountingStateBolt(Bolt):
    """Stateful word-count-style sink whose state is checkpointable.

    The snapshot includes the seen-seq set (the idempotence data a real
    stateful sink persists alongside its aggregates), so an at-least-once
    redelivery after restore never double-counts."""

    def __init__(self):
        self.counts = {}
        self.seen = set()
        self.restored = 0

    def execute(self, stream_tuple, collector):
        key, seq = stream_tuple[0], stream_tuple[1]
        if seq in self.seen:
            return
        self.seen.add(seq)
        self.counts[key] = self.counts.get(key, 0) + 1

    def snapshot(self):
        return {"counts": self.counts, "seen": self.seen}

    def restore(self, state):
        self.counts = state["counts"]
        self.seen = state["seen"]
        self.restored += 1


def _checkpoint_config():
    return TopologyConfig(acking=True, num_ackers=1, tuple_timeout=2.0,
                          batch_size=10, max_spout_rate=200, max_pending=30,
                          replay_enabled=True, checkpoint_interval=0.5)


def _run(cluster_class, crash_at=None, seed=21, total=300):
    engine = Engine()
    cluster = cluster_class(engine, num_hosts=1, seed=seed)
    builder = TopologyBuilder("stateful", _checkpoint_config())
    builder.set_spout("source", lambda: KeyedSpout(total), 1)
    builder.set_bolt("sink", CountingStateBolt, 1,
                     stateful=True).fields_grouping("source", [0])
    physical = cluster.submit(builder.build())
    if crash_at is not None:
        [sink_id] = physical.worker_ids_for("sink")
        kill_worker_at(cluster, sink_id, when=crash_at, reason="test crash")
    engine.run(until=30.0)
    sink = cluster.executors_for("stateful", "sink")[0].component
    return cluster, sink


@pytest.mark.parametrize("cluster_class", [StormCluster, TyphoonCluster])
def test_restored_counts_match_fault_free_run(cluster_class):
    _, clean_sink = _run(cluster_class, crash_at=None)
    cluster, crashed_sink = _run(cluster_class, crash_at=3.5)
    store = cluster.services[CHECKPOINT_SERVICE]
    assert store.saves > 0 and store.restores > 0
    assert crashed_sink.restored == 1  # relaunched from a snapshot
    # The crash lost post-checkpoint applications; replay re-delivered
    # them against the restored state, converging on the exact fault-free
    # result — not a subset (loss) and not an overcount (duplication).
    assert crashed_sink.counts == clean_sink.counts
    assert clean_sink.counts == {("k%d" % k): 60 for k in range(5)}


def test_crash_without_checkpointing_loses_state():
    """Control experiment: the same crash with checkpointing disabled
    ends with the post-crash instance missing pre-crash aggregates."""

    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=1, seed=21)
    config = TopologyConfig(acking=True, num_ackers=1, tuple_timeout=2.0,
                            batch_size=10, max_spout_rate=200,
                            max_pending=30, replay_enabled=True)
    builder = TopologyBuilder("stateless-recovery", config)
    builder.set_spout("source", lambda: KeyedSpout(300), 1)
    builder.set_bolt("sink", CountingStateBolt, 1,
                     stateful=True).fields_grouping("source", [0])
    physical = cluster.submit(builder.build())
    [sink_id] = physical.worker_ids_for("sink")
    kill_worker_at(cluster, sink_id, when=3.5, reason="test crash")
    engine.run(until=30.0)
    sink = cluster.executors_for("stateless-recovery", "sink")[0].component
    assert sink.restored == 0
    # Replay re-delivers un-acked tuples, but everything acked before the
    # crash is gone from the replacement's empty state.
    assert sum(sink.counts.values()) < 300


def test_deferred_acks_flush_with_snapshot():
    """With checkpointing on, a stateful worker's acks ride on snapshot
    persistence: nothing is left deferred once the topology drains, and
    every tree still completes (the spout is not starved by deferral)."""
    cluster, sink = _run(TyphoonCluster, crash_at=None)
    executor = cluster.executors_for("stateful", "sink")[0]
    assert executor._checkpoints is not None
    assert executor._deferred_acks == []
    from repro.streaming import REPLAY_SERVICE
    [buffer] = cluster.services[REPLAY_SERVICE].buffers.values()
    assert buffer.completed == buffer.registered == 300
    assert sum(sink.counts.values()) == 300

"""Unit tests for the tuple model and stream identifiers."""

import pytest

from repro.streaming.tuples import (
    ACK_STREAM,
    CONTROL_STREAM,
    DEFAULT_STREAM,
    SIGNAL_STREAM,
    Anchor,
    StreamTuple,
    is_control_stream,
    is_signal_stream,
    signal_tuple,
)


def test_values_coerced_to_tuple():
    stream_tuple = StreamTuple(["a", 1])
    assert stream_tuple.values == ("a", 1)
    assert isinstance(stream_tuple.values, tuple)


def test_indexing_and_len():
    stream_tuple = StreamTuple(("x", "y", "z"))
    assert stream_tuple[0] == "x"
    assert stream_tuple[2] == "z"
    assert len(stream_tuple) == 3


def test_with_values_preserves_metadata():
    original = StreamTuple(("a",), stream=7, source_component="comp",
                           source_worker=3, anchor=Anchor(1, 2))
    replaced = original.with_values(("b", "c"))
    assert replaced.values == ("b", "c")
    assert replaced.stream == 7
    assert replaced.source_component == "comp"
    assert replaced.source_worker == 3
    assert replaced.anchor == original.anchor


def test_stream_id_predicates():
    assert is_control_stream(CONTROL_STREAM)
    assert not is_control_stream(DEFAULT_STREAM)
    assert is_signal_stream(SIGNAL_STREAM)
    assert not is_signal_stream(ACK_STREAM)


def test_well_known_streams_are_distinct():
    streams = {DEFAULT_STREAM, SIGNAL_STREAM, ACK_STREAM, CONTROL_STREAM}
    assert len(streams) == 4


def test_signal_tuple_shape():
    signal = signal_tuple("flush", source_worker=9)
    assert signal.stream == SIGNAL_STREAM
    assert signal.values == ("flush",)
    assert signal.source_worker == 9


def test_anchor_is_frozen():
    anchor = Anchor(10, 20)
    with pytest.raises(Exception):
        anchor.root_id = 99

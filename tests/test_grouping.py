"""Unit + property tests for routing state and policies (Listing 1)."""

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.streaming import (
    ALL,
    FIELDS,
    GLOBAL,
    Grouping,
    Router,
    RoutingError,
    SHUFFLE,
    StreamTuple,
    hash_fields,
)


def make_tuple(*values):
    return StreamTuple(tuple(values))


def test_shuffle_round_robin():
    router = Router(Grouping(SHUFFLE), [10, 11, 12])
    picks = [router.route(make_tuple("x"))[0] for _ in range(6)]
    assert picks == [10, 11, 12, 10, 11, 12]
    assert router.decisions == 6


def test_fields_same_key_same_worker():
    router = Router(Grouping(FIELDS, (0,)), [10, 11, 12, 13])
    first = router.route(make_tuple("apple", 1))
    for _ in range(5):
        assert router.route(make_tuple("apple", 99)) == first


def test_fields_uses_only_key_fields():
    router = Router(Grouping(FIELDS, (1,)), [10, 11, 12])
    a = router.route(make_tuple("x", "key", 1))
    b = router.route(make_tuple("y", "key", 2))
    assert a == b


def test_fields_missing_field_raises():
    router = Router(Grouping(FIELDS, (5,)), [10])
    with pytest.raises(RoutingError):
        router.route(make_tuple("only-one"))


def test_global_always_first():
    router = Router(Grouping(GLOBAL), [42, 43])
    assert all(router.route(make_tuple(i)) == [42] for i in range(5))


def test_all_returns_every_hop():
    router = Router(Grouping(ALL), [1, 2, 3])
    assert router.route(make_tuple("x")) == [1, 2, 3]
    assert router.is_broadcast


def test_route_with_no_hops_raises():
    router = Router(Grouping(SHUFFLE), [])
    with pytest.raises(RoutingError):
        router.route(make_tuple("x"))


def test_update_next_hops_resets_counter():
    router = Router(Grouping(SHUFFLE), [1, 2])
    router.route(make_tuple("x"))
    router.update(next_hops=[5, 6, 7])
    assert router.route(make_tuple("x")) == [5]
    assert router.num_next_hops == 3


def test_update_grouping_switches_policy():
    router = Router(Grouping(FIELDS, (0,)), [1, 2])
    router.update(grouping=Grouping(SHUFFLE))
    picks = [router.route(make_tuple("same-key"))[0] for _ in range(4)]
    assert picks == [1, 2, 1, 2]  # no longer key-pinned


def test_key_redistribution_on_scale_changes_mapping():
    # The §3.5 consistency hazard: changing numNextHops remaps keys.
    router = Router(Grouping(FIELDS, (0,)), [1, 2, 3])
    keys = ["k%d" % i for i in range(50)]
    before = {k: router.route(make_tuple(k))[0] for k in keys}
    router.update(next_hops=[1, 2, 3, 4])
    after = {k: router.route(make_tuple(k))[0] for k in keys}
    assert before != after  # at least some keys moved


def test_hash_fields_stable_across_instances():
    values = ("word", 3)
    assert hash_fields(values, (0,)) == hash_fields(("word", 99), (0,))
    assert hash_fields(values, (0,)) != hash_fields(("другое", 3), (0,))


@settings(max_examples=100)
@given(st.text(max_size=20), st.integers(2, 16))
def test_fields_routing_deterministic_property(key, hops):
    router_a = Router(Grouping(FIELDS, (0,)), list(range(hops)))
    router_b = Router(Grouping(FIELDS, (0,)), list(range(hops)))
    assert router_a.route(make_tuple(key)) == router_b.route(make_tuple(key))


@settings(max_examples=50)
@given(st.integers(1, 8), st.integers(1, 200))
def test_shuffle_is_balanced_property(hops, count):
    router = Router(Grouping(SHUFFLE), list(range(hops)))
    picks = Counter(router.route(make_tuple(i))[0] for i in range(count))
    most = max(picks.values())
    least = min(picks.values()) if len(picks) == hops else 0
    assert most - least <= 1  # perfect round robin


@settings(max_examples=50)
@given(st.lists(st.text(max_size=8), min_size=1, max_size=100),
       st.integers(1, 8))
def test_fields_partition_property(keys, hops):
    # Key-based routing is a function: same key never maps to two hops.
    router = Router(Grouping(FIELDS, (0,)), list(range(hops)))
    mapping = {}
    for key in keys:
        (hop,) = router.route(make_tuple(key))
        assert mapping.setdefault(key, hop) == hop
        assert 0 <= hop < hops

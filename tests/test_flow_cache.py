"""Exact-match flow-cache correctness: invalidation on every table and
environment mutation, counter parity with the authoritative table, and
cache consistency under the chaos patterns (switch crash/restore,
controller outage replay, live-debugger mirror install).

The cache must be *invisible* except for speed: every scenario asserts
the externally observable behaviour (delivery, counters, stats) is what
an uncached table would produce.
"""

import pytest

from repro.core import TyphoonCluster
from repro.core.apps import CollectingDebugBolt, LiveDebugger
from repro.net import BROADCAST, TYPHOON_ETHERTYPE, EthernetFrame, WorkerAddress
from repro.sdn import (
    ADD,
    DELETE,
    DELETE_STRICT,
    GROUP_ALL,
    Bucket,
    FlowMod,
    FlowStatsRequest,
    GroupAction,
    GroupMod,
    Match,
    Output,
    SoftwareSwitch,
)
from repro.sdn.flow import FlowEntry, FlowTable
from repro.sim import DEFAULT_COSTS, Engine
from repro.sim.faults import set_controller_down, set_switch_down
from repro.streaming import TopologyConfig
from repro.workloads import forwarding_topology

from tests.conftest import simple_chain

W1 = WorkerAddress(1, 1)
W2 = WorkerAddress(1, 2)
W3 = WorkerAddress(1, 3)


def make_switch(engine):
    return SoftwareSwitch(engine, DEFAULT_COSTS, dpid="sw0")


def frame(src=W1, dst=W2):
    return EthernetFrame(dst=dst, src=src, ethertype=TYPHOON_ETHERTYPE,
                         payload=b"data")


# -- FlowTable-level invalidation -------------------------------------------------


def test_cache_hit_returns_same_entry():
    table = FlowTable()
    entry = table.add(FlowEntry(Match(in_port=1, dl_dst=W2), (Output(2),)))
    first = table.lookup_cached(frame(), 1)
    second = table.lookup_cached(frame(), 1)
    assert first is entry and second is entry
    assert table.cache.hits == 1 and table.cache.misses == 1


def test_negative_cache_invalidated_by_covering_add():
    table = FlowTable()
    assert table.lookup_cached(frame(), 1) is None
    assert table.lookup_cached(frame(), 1) is None  # cached miss
    assert table.cache.hits == 1
    entry = table.add(FlowEntry(Match(in_port=1), (Output(2),)))
    assert table.lookup_cached(frame(), 1) is entry


def test_add_higher_priority_overlap_invalidates():
    table = FlowTable()
    low = table.add(FlowEntry(Match(in_port=1), (Output(2),), priority=10))
    assert table.lookup_cached(frame(), 1) is low
    high = table.add(FlowEntry(Match(in_port=1, dl_dst=W2), (Output(3),),
                               priority=50))
    assert table.lookup_cached(frame(), 1) is high


def test_add_lower_priority_overlap_keeps_cached_answer():
    table = FlowTable()
    high = table.add(FlowEntry(Match(in_port=1, dl_dst=W2), (Output(3),),
                               priority=50))
    assert table.lookup_cached(frame(), 1) is high
    hits_before = table.cache.hits
    table.add(FlowEntry(Match(in_port=1), (Output(2),), priority=10))
    # The cached answer outranks the new entry: still served from cache.
    assert table.lookup_cached(frame(), 1) is high
    assert table.cache.hits == hits_before + 1


def test_add_unrelated_match_keeps_cached_answer():
    table = FlowTable()
    entry = table.add(FlowEntry(Match(in_port=1, dl_dst=W2), (Output(2),)))
    assert table.lookup_cached(frame(), 1) is entry
    table.add(FlowEntry(Match(in_port=7, dl_dst=W3), (Output(9),),
                        priority=200))
    hits_before = table.cache.hits
    assert table.lookup_cached(frame(), 1) is entry
    assert table.cache.hits == hits_before + 1


def test_remove_invalidates_only_removed_answers():
    table = FlowTable()
    primary = table.add(FlowEntry(Match(in_port=1, dl_dst=W2),
                                  (Output(2),), priority=50))
    fallback = table.add(FlowEntry(Match(in_port=1), (Output(4),),
                                   priority=10))
    other = table.add(FlowEntry(Match(in_port=7), (Output(9),)))
    assert table.lookup_cached(frame(), 1) is primary
    assert table.lookup_cached(frame(src=W3, dst=W1), 7) is other
    table.remove(Match(in_port=1, dl_dst=W2), strict=True, priority=50)
    # Deleted answer re-resolves to the fallback; other key stays cached.
    assert table.lookup_cached(frame(), 1) is fallback
    hits = table.cache.hits
    assert table.lookup_cached(frame(src=W3, dst=W1), 7) is other
    assert table.cache.hits == hits + 1


def test_expire_idle_invalidates_cache():
    table = FlowTable()
    entry = table.add(FlowEntry(Match(in_port=1), (Output(2),),
                                idle_timeout=1.0))
    assert table.lookup_cached(frame(), 1) is entry
    expired = table.expire_idle(now=10.0)
    assert entry in expired
    assert table.lookup_cached(frame(), 1) is None


def test_cache_overflow_clears_and_recovers():
    table = FlowTable()
    table.cache.MAX_ENTRIES = 8
    entry = table.add(FlowEntry(Match(), (Output(2),)))
    for i in range(40):
        key_frame = frame(src=WorkerAddress(2, i), dst=WorkerAddress(3, i))
        assert table.lookup_cached(key_frame, i % 4) is entry
    assert len(table.cache) <= 8
    assert table.lookup_cached(frame(), 1) is entry


# -- switch-level invalidation ----------------------------------------------------


def test_cache_hits_bump_flow_counters_identically():
    engine = Engine()
    switch = make_switch(engine)
    received = []
    events = []
    switch.connect_controller(events.append)
    p_in = switch.add_port("w1", lambda f, t: None)
    p_out = switch.add_port("w2", lambda f, t: received.append(f))
    switch.handle_message(FlowMod(ADD, Match(in_port=p_in), (Output(p_out),)))
    engine.run(until=0.01)
    for _ in range(5):
        assert switch.inject(p_in, frame())
    engine.run(until=0.05)
    assert len(received) == 5
    assert switch.cache_hits == 4 and switch.cache_misses == 1
    switch.handle_message(FlowStatsRequest(Match()))
    engine.run(until=0.1)
    (reply,) = [e for e in events if type(e).__name__ == "FlowStatsReply"]
    (stats,) = reply.entries
    # The stats monitor / auto-scaler see the same numbers as uncached.
    assert stats.packets == 5
    assert stats.bytes == 5 * len(frame())


def test_flow_mod_delete_strict_semantics_with_cache():
    engine = Engine()
    switch = make_switch(engine)
    outs = {2: [], 3: []}
    p_in = switch.add_port("w1", lambda f, t: None)
    p_a = switch.add_port("w2", lambda f, t: outs[2].append(f))
    p_b = switch.add_port("w3", lambda f, t: outs[3].append(f))
    switch.handle_message(FlowMod(ADD, Match(in_port=p_in, dl_dst=W2),
                                  (Output(p_a),), priority=50))
    switch.handle_message(FlowMod(ADD, Match(in_port=p_in),
                                  (Output(p_b),), priority=10))
    engine.run(until=0.01)
    switch.inject(p_in, frame())
    switch.inject(p_in, frame())
    engine.run(until=0.02)
    assert len(outs[2]) == 2 and not outs[3]
    # DELETE_STRICT with a non-matching priority removes nothing…
    switch.handle_message(FlowMod(DELETE_STRICT,
                                  Match(in_port=p_in, dl_dst=W2),
                                  priority=99))
    engine.run(until=0.03)
    switch.inject(p_in, frame())
    engine.run(until=0.04)
    assert len(outs[2]) == 3
    # …and with the exact priority removes exactly that rule.
    switch.handle_message(FlowMod(DELETE_STRICT,
                                  Match(in_port=p_in, dl_dst=W2),
                                  priority=50))
    engine.run(until=0.05)
    switch.inject(p_in, frame())
    engine.run(until=0.06)
    assert len(outs[2]) == 3 and len(outs[3]) == 1


def test_group_mod_invalidates_cache():
    engine = Engine()
    switch = make_switch(engine)
    outs = {2: [], 3: []}
    p_in = switch.add_port("w1", lambda f, t: None)
    p_a = switch.add_port("w2", lambda f, t: outs[2].append(f))
    p_b = switch.add_port("w3", lambda f, t: outs[3].append(f))
    switch.handle_message(GroupMod("add", 1, GROUP_ALL,
                                   (Bucket((Output(p_a),)),)))
    switch.handle_message(FlowMod(ADD, Match(in_port=p_in),
                                  (GroupAction(1),)))
    engine.run(until=0.01)
    switch.inject(p_in, frame())
    switch.inject(p_in, frame())
    engine.run(until=0.02)
    assert len(outs[2]) == 2 and not outs[3]
    # Retargeting the group must not serve stale cached expansions.
    switch.handle_message(GroupMod("modify", 1, GROUP_ALL,
                                   (Bucket((Output(p_b),)),)))
    engine.run(until=0.03)
    switch.inject(p_in, frame())
    engine.run(until=0.04)
    assert len(outs[2]) == 2 and len(outs[3]) == 1


def test_port_remove_invalidates_cache():
    engine = Engine()
    switch = make_switch(engine)
    received = []
    p_in = switch.add_port("w1", lambda f, t: None)
    p_out = switch.add_port("w2", lambda f, t: received.append(f))
    switch.handle_message(FlowMod(ADD, Match(in_port=p_in), (Output(p_out),)))
    engine.run(until=0.01)
    assert switch.inject(p_in, frame())
    engine.run(until=0.02)
    switch.remove_port(p_out)
    switch.inject(p_in, frame())
    engine.run(until=0.03)
    assert len(received) == 1  # no delivery to the removed port


def test_switch_crash_and_restore_reset_cache():
    engine = Engine()
    switch = make_switch(engine)
    p_in = switch.add_port("w1", lambda f, t: None)
    p_out = switch.add_port("w2", lambda f, t: None)
    switch.handle_message(FlowMod(ADD, Match(in_port=p_in), (Output(p_out),)))
    engine.run(until=0.01)
    assert switch.inject(p_in, frame())
    assert switch.cache_misses == 1
    switch.crash()
    switch.restore()
    # Fresh table, fresh cache: the old cached answer must be gone.
    assert switch.cache_hits == 0 and switch.cache_misses == 0
    assert not switch.inject(p_in, frame())  # table miss until re-install


# -- chaos patterns against the full cluster --------------------------------------


def _total_cache_counters(cluster):
    hits = sum(s.cache_hits for s in cluster.fabric.switches())
    misses = sum(s.cache_misses for s in cluster.fabric.switches())
    return hits, misses


def _delivered(cluster, topology, component="sink"):
    return sum(e.stats.processed
               for e in cluster.executors_for(topology, component))


def test_switch_crash_restore_traffic_and_cache_recover():
    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=2, seed=3)
    cluster.submit(forwarding_topology(
        "fwd", TopologyConfig(batch_size=100, max_spout_rate=20_000)))
    engine.run(until=4.0)
    before = _delivered(cluster, "fwd")
    assert before > 0
    victim = sorted(cluster.fabric.hosts)[0]
    set_switch_down(cluster, victim, True)
    engine.run(until=5.0)
    set_switch_down(cluster, victim, False)
    engine.run(until=9.0)
    after = _delivered(cluster, "fwd")
    assert after > before  # delivery resumed on re-installed rules
    hits, misses = _total_cache_counters(cluster)
    # Steady state re-established: the replayed rules are being hit.
    assert hits > misses


def test_controller_outage_and_replay_keep_cache_consistent():
    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=2, seed=5)
    cluster.submit(forwarding_topology(
        "fwd", TopologyConfig(batch_size=100, max_spout_rate=20_000)))
    engine.run(until=4.0)
    set_controller_down(cluster, True)
    engine.run(until=5.5)
    set_controller_down(cluster, False)
    engine.run(until=9.0)
    before = _delivered(cluster, "fwd")
    engine.run(until=10.0)
    assert _delivered(cluster, "fwd") > before
    hits, misses = _total_cache_counters(cluster)
    assert hits > misses


def test_live_debugger_mirror_install_invalidates_cached_path():
    """The strongest ADD-invalidation case: the tap installs a boosted-
    priority mirror over a path that is hot in the cache. If the stale
    cached entry kept winning, the debug worker would never see a tuple."""
    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=2, seed=7)
    debugger = cluster.register_app(LiveDebugger(cluster))
    cluster.submit(simple_chain("dbg", limit=None,
                                config=TopologyConfig(max_spout_rate=2000)))
    engine.run(until=8.0)
    hits, misses = _total_cache_counters(cluster)
    assert hits > misses  # the path being tapped is cache-hot
    debugger.tap("dbg", "source")
    engine.run(until=16.0)
    debug_executor = debugger.debug_executor("dbg", "source")
    assert debug_executor is not None
    assert debug_executor.stats.processed > 0
    # Untap removes the mirror rules; mirroring must stop (the cache
    # may not keep serving the boosted mirror entry after deletion).
    seen_at_untap = debug_executor.stats.processed
    debugger.untap("dbg", "source")
    engine.run(until=17.0)
    settled = debugger.debug_executor("dbg", "source")
    if settled is not None:
        engine.run(until=20.0)
        assert settled.stats.processed <= seen_at_untap + 1

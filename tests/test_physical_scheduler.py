"""Unit tests for physical topologies and both schedulers."""

import pytest

from repro.core import TyphoonScheduler, topological_order
from repro.net import Cluster
from repro.streaming import (
    Bolt,
    RoundRobinScheduler,
    Spout,
    TopologyBuilder,
    WorkerAssignment,
    WorkerIdAllocator,
)
from repro.streaming.physical import PhysicalTopology


class DummySpout(Spout):
    def next_tuple(self, collector):
        pass


class DummyBolt(Bolt):
    def execute(self, stream_tuple, collector):
        pass


def pipeline(stages=3, parallelism=2):
    builder = TopologyBuilder("pipe")
    builder.set_spout("stage0", DummySpout, parallelism)
    for index in range(1, stages):
        builder.set_bolt("stage%d" % index, DummyBolt,
                         parallelism).shuffle_grouping("stage%d" % (index - 1))
    return builder.build()


def schedule(scheduler, logical, hosts=3):
    cluster = Cluster.of_size(hosts)
    return scheduler.schedule(logical, cluster, app_id=1,
                              allocator=WorkerIdAllocator())


def test_round_robin_spreads_evenly():
    physical = schedule(RoundRobinScheduler(), pipeline(3, 2), hosts=3)
    loads = {}
    for assignment in physical.assignments.values():
        loads[assignment.hostname] = loads.get(assignment.hostname, 0) + 1
    assert sorted(loads.values()) == [2, 2, 2]


def test_worker_ids_unique_and_sequential():
    physical = schedule(RoundRobinScheduler(), pipeline(), hosts=2)
    ids = sorted(physical.assignments)
    assert ids == list(range(1, 7))


def test_workers_for_ordered_by_task_index():
    physical = schedule(RoundRobinScheduler(), pipeline(), hosts=2)
    workers = physical.workers_for("stage1")
    assert [w.task_index for w in workers] == [0, 1]


def test_typhoon_scheduler_collocates_neighbours():
    logical = pipeline(stages=3, parallelism=2)
    physical = schedule(TyphoonScheduler(), logical, hosts=3)
    # Block placement: the 6 workers split 2/2/2 across hosts in
    # topological order, so stage0+stage1's first worker share host-0.
    hosts_by_component = {
        name: [w.hostname for w in physical.workers_for(name)]
        for name in ("stage0", "stage1", "stage2")
    }
    assert hosts_by_component["stage0"] == ["host-0", "host-0"]
    assert hosts_by_component["stage2"] == ["host-2", "host-2"]


def test_typhoon_scheduler_remote_traffic_less_than_round_robin():
    # Regime where co-location is possible: two pipeline stages fit per
    # host, so block placement keeps adjacent stages local while round
    # robin scatters every stage across both hosts.
    logical = pipeline(stages=4, parallelism=2)
    cluster = Cluster.of_size(2)

    def remote_pairs(physical):
        count = 0
        for edge in physical.edges:
            for src in physical.workers_for(edge.src):
                for dst in physical.workers_for(edge.dst):
                    if src.hostname != dst.hostname:
                        count += 1
        return count

    rr = RoundRobinScheduler().schedule(logical, cluster, 1,
                                        WorkerIdAllocator())
    ty = TyphoonScheduler().schedule(logical, cluster, 1,
                                     WorkerIdAllocator())
    assert remote_pairs(ty) < remote_pairs(rr)


def test_topological_order():
    logical = pipeline(stages=3, parallelism=1)
    assert topological_order(logical) == ["stage0", "stage1", "stage2"]


def test_place_one_prefers_neighbour_host():
    logical = pipeline(stages=2, parallelism=1)
    cluster = Cluster.of_size(3)
    scheduler = TyphoonScheduler()
    physical = scheduler.schedule(logical, cluster, 1, WorkerIdAllocator())
    host = scheduler.place_one(physical, "stage1", cluster)
    neighbour_hosts = {w.hostname for w in physical.workers_for("stage0")}
    neighbour_hosts |= {w.hostname for w in physical.workers_for("stage1")}
    assert host in neighbour_hosts


def test_physical_add_remove_replace():
    physical = schedule(RoundRobinScheduler(), pipeline(), hosts=2)
    new = WorkerAssignment(worker_id=99, component="stage1", task_index=2,
                           hostname="host-0")
    grown = physical.add_worker(new)
    assert 99 in grown.assignments
    assert grown.version == physical.version + 1
    with pytest.raises(ValueError):
        grown.add_worker(new)
    shrunk = grown.remove_worker(99)
    assert 99 not in shrunk.assignments
    moved = physical.replace_worker(
        physical.worker(1).relocated("host-1"))
    assert moved.worker(1).hostname == "host-1"
    assert physical.worker(1).hostname != "host-1" or True  # original frozen


def test_next_hop_ids():
    physical = schedule(RoundRobinScheduler(), pipeline(), hosts=2)
    hops = physical.next_hop_ids("stage0")
    assert ("stage1", 0) in hops
    assert hops[("stage1", 0)] == physical.worker_ids_for("stage1")


def test_allocator_reserve():
    allocator = WorkerIdAllocator()
    assert allocator.allocate() == 1
    allocator.reserve_through(10)
    assert allocator.allocate() == 11

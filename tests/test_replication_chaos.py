"""Chaos tests for exactly-once active replication.

Each regime drives one targeted failure against the replicated workload
and holds the quiesced cluster to the ``replication-conservation``
invariant (plus the zero-lost / zero-duplicate registry checks):

* a replica killed mid-update (supervisor relaunch + log catch-up);
* the leader killed, then its promoted successor killed mid-failover;
* the broadcast link between group hosts flapped (gap repair from the
  sequencer log);
* a controller outage overlapping a replica kill (GroupMod/port events
  queue and flush FIFO on recovery).
"""

import pytest

from repro.core.apps.fault_detector import FaultDetector
from repro.core.chaos import (
    FAIL,
    I_REPLICATION,
    PASS,
    SKIP,
    InvariantChecker,
    run_chaos,
    run_chaos_exactly_once,
)
from repro.core.runtime import TyphoonCluster
from repro.sim.engine import Engine
from repro.sim.faults import FaultPlan, _crash
from repro.streaming.topology import TopologyConfig
from repro.workloads.chaosflow import DEDUP_SERVICE, DedupRegistry
from repro.workloads.replicated import replicated_topology


def _deploy(seed=0, rate=500.0):
    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=3, seed=seed)
    cluster.register_app(FaultDetector(cluster))
    registry = DedupRegistry(at_least_once=False)
    cluster.services[DEDUP_SERVICE] = registry
    config = TopologyConfig(batch_size=50, max_spout_rate=rate,
                            reliable_control=True)
    cluster.submit(replicated_topology("chaos-rep", config))
    group = cluster.replication.group_of("chaos-rep", "rstate")
    assert group is not None
    return engine, cluster, registry, group


def _kill(cluster, group, role):
    def action():
        if role == "leader":
            victim = group.leader
        else:
            alive = sorted(w for w in group.alive if w != group.leader)
            victim = alive[-1] if alive else None
        if victim is not None:
            _crash(cluster, victim, "chaos test: %s kill" % role)
    return action


def _finish(engine, cluster, registry, group, until=12.0):
    engine.run(until=until)
    report = InvariantChecker(cluster, settle=2.0).run()
    result = report.result(I_REPLICATION)
    assert result.status == PASS, result.detail
    assert report.ok, report.render()
    assert group.commits > 0
    assert registry.duplicates == 0
    assert not registry.missing_keys()
    return report


def test_replica_kill_mid_update():
    engine, cluster, registry, group = _deploy(seed=11)
    plan = FaultPlan(cluster)
    plan.custom(4.0, "kill follower", _kill(cluster, group, "follower"))
    engine.run(until=2.0)
    plan.arm()
    _finish(engine, cluster, registry, group)
    # The relaunched replica rejoined and caught back up.
    assert len(group.alive) == len(group.worker_ids)
    assert group.repairs >= 0 and group.next_in > 0


def test_leader_kill_during_failover():
    engine, cluster, registry, group = _deploy(seed=12)
    first_leader = group.leader
    plan = FaultPlan(cluster)
    plan.custom(4.0, "kill leader", _kill(cluster, group, "leader"))
    plan.custom(4.3, "kill promoted leader", _kill(cluster, group, "leader"))
    engine.run(until=2.0)
    plan.arm()
    _finish(engine, cluster, registry, group)
    # Two failovers actually happened (plus rejoin promotions, if the
    # group ever drained to empty) and the final leader is alive.
    assert group.promotions >= 2
    assert group.epoch >= 2
    assert group.leader in group.alive
    assert first_leader is not None


def test_broadcast_link_flap():
    engine, cluster, registry, group = _deploy(seed=13)
    hosts = sorted(set(group.hosts.values()))
    assert len(hosts) >= 2
    plan = FaultPlan(cluster)
    plan.link_flap(hosts[0], hosts[1], 4.0, 0.8)
    engine.run(until=2.0)
    plan.arm()
    _finish(engine, cluster, registry, group)
    # Frames were genuinely lost on the partitioned link and repaired
    # from the sequencer log (or re-emitted to the sink).
    assert group.repairs + group.reemits > 0


def test_controller_outage_during_replica_kill():
    engine, cluster, registry, group = _deploy(seed=14)
    plan = FaultPlan(cluster)
    plan.controller_outage(4.0, 1.2)
    plan.custom(4.3, "kill follower during outage",
                _kill(cluster, group, "follower"))
    engine.run(until=2.0)
    plan.arm()
    _finish(engine, cluster, registry, group)
    assert cluster.sdn.up
    assert len(group.alive) == len(group.worker_ids)


def test_invariant_skips_without_replication():
    """The sixth invariant must not fire on unreplicated topologies —
    and the plain chaos harness still reports it as a SKIP line."""
    result = run_chaos("typhoon", seed=3, duration=6.0, faults=2,
                       rate=400.0)
    rep = result.invariants.result(I_REPLICATION)
    assert rep.status == SKIP
    assert rep.status != FAIL
    assert "replication-conservation" in result.render()


def test_exactly_once_runner_end_to_end():
    result = run_chaos_exactly_once(seed=2, duration=12.0, faults=4,
                                    rate=600.0)
    assert result.ok, result.render()
    assert result.exactly_once
    rep = result.invariants.result(I_REPLICATION)
    assert rep.status == PASS
    assert "lost=0" in rep.detail
    # Same seed, same report, byte for byte.
    again = run_chaos_exactly_once(seed=2, duration=12.0, faults=4,
                                   rate=600.0)
    assert again.render() == result.render()

"""Integration tests for stable topology updates (§3.5, Fig. 6) and the
dynamic topology manager."""

import pytest

from repro.core import ReconfigurationError, TyphoonCluster
from repro.sim import Engine
from repro.streaming import Grouping, SHUFFLE, TopologyBuilder, TopologyConfig
from repro.workloads import word_count_topology
from tests.conftest import CountingSpout, RecordingBolt


def start_wordcount(splits=2, counts=2, rate=2000, hosts=2, seed=0):
    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=hosts, seed=seed)
    config = TopologyConfig(batch_size=50, max_spout_rate=rate)
    cluster.submit(word_count_topology("wc", config, splits=splits,
                                       counts=counts, words_per_sentence=2))
    engine.run(until=8.0)
    return engine, cluster


def processed_total(cluster, component):
    """Total processed over all workers ever run for the component
    (metrics meters outlive killed workers)."""
    prefix = "wc.%s." % component
    return sum(meter.total for name, meter in cluster.metrics.meters.items()
               if name.startswith(prefix) and name.endswith(".processed"))


def test_scale_up_stateless_adds_workers_and_traffic():
    engine, cluster = start_wordcount(splits=2)
    process = cluster.set_parallelism("wc", "split", 3)
    engine.run(until=20.0)
    assert process.triggered and not process.failed
    splits = cluster.executors_for("wc", "split")
    assert len(splits) == 3
    record = cluster.manager.topologies["wc"]
    assert record.logical.node("split").parallelism == 3
    assert len(record.physical.worker_ids_for("split")) == 3
    engine.run(until=35.0)
    # The new worker receives its share of the shuffle.
    new_split = splits[-1]
    assert new_split.stats.processed > 0


def test_scale_up_no_tuple_loss():
    engine, cluster = start_wordcount(splits=2)
    emitted_by_source = cluster.executors_for("wc", "source")[0]
    cluster.set_parallelism("wc", "split", 4)
    engine.run(until=25.0)
    cluster.deactivate("wc")
    engine.run(until=32.0)  # drain in-flight tuples
    source = cluster.executors_for("wc", "source")[0]
    assert processed_total(cluster, "split") == source.stats.emitted
    misses = sum(s.table_misses for s in cluster.fabric.switches())
    drops = sum(s.packets_dropped for s in cluster.fabric.switches())
    assert misses == 0
    assert drops == 0


def test_scale_down_stateless_no_loss():
    engine, cluster = start_wordcount(splits=3)
    process = cluster.set_parallelism("wc", "split", 2)
    engine.run(until=20.0)
    assert process.triggered and not process.failed
    assert len(cluster.executors_for("wc", "split")) == 2
    cluster.deactivate("wc")
    engine.run(until=27.0)
    source = cluster.executors_for("wc", "source")[0]
    assert processed_total(cluster, "split") == source.stats.emitted


def test_scale_down_stateful_flushes_victims():
    engine, cluster = start_wordcount(counts=3)
    counts_before = cluster.executors_for("wc", "count")
    victim = counts_before[-1]
    assert victim.component.counts or True  # may be empty if unlucky keys
    process = cluster.set_parallelism("wc", "count", 2)
    engine.run(until=20.0)
    assert process.triggered and not process.failed
    # The victim's cache was flushed by a SIGNAL before removal.
    assert victim.component.flushes >= 1
    assert not victim.alive
    assert len(cluster.executors_for("wc", "count")) == 2


def test_scale_up_stateful_signals_existing_workers():
    engine, cluster = start_wordcount(counts=2)
    counts_before = cluster.executors_for("wc", "count")
    process = cluster.set_parallelism("wc", "count", 3)
    engine.run(until=20.0)
    assert process.triggered and not process.failed
    for executor in counts_before:
        assert executor.component.flushes >= 1


def test_replace_computation_swaps_workers_live():
    engine, cluster = start_wordcount()
    old_ids = set(cluster.manager.topologies["wc"]
                  .physical.worker_ids_for("split"))

    from repro.workloads import SplitBolt

    class UppercaseSplit(SplitBolt):
        def execute(self, stream_tuple, collector):
            for word in stream_tuple[0].split():
                collector.emit((word.upper(), 1), anchor=stream_tuple)

    process = cluster.replace_computation("wc", "split", UppercaseSplit)
    engine.run(until=25.0)
    assert process.triggered and not process.failed
    new_ids = set(cluster.manager.topologies["wc"]
                  .physical.worker_ids_for("split"))
    assert new_ids.isdisjoint(old_ids)
    splits = cluster.executors_for("wc", "split")
    assert all(isinstance(s.component, UppercaseSplit) for s in splits)
    engine.run(until=30.0)
    count = cluster.executors_for("wc", "count")[0]
    upper_words = [w for w in count.component.counts if w.isupper()]
    assert upper_words  # new logic's output reached downstream


def test_change_grouping_at_runtime():
    engine, cluster = start_wordcount(splits=2)
    process = cluster.set_grouping("wc", "source", "split",
                                   Grouping(SHUFFLE))
    engine.run(until=15.0)
    assert process.triggered and not process.failed
    source = cluster.executors_for("wc", "source")[0]
    router = source.routers[("split", 0)]
    assert router.grouping.kind == SHUFFLE


def test_noop_parallelism_change():
    engine, cluster = start_wordcount(splits=2)
    process = cluster.set_parallelism("wc", "split", 2)
    engine.run(until=12.0)
    assert process.triggered
    assert len(cluster.executors_for("wc", "split")) == 2


def test_requests_serialized_per_topology():
    engine, cluster = start_wordcount(splits=2)
    first = cluster.set_parallelism("wc", "split", 3)
    second = cluster.set_parallelism("wc", "split", 4)
    engine.run(until=40.0)
    assert first.triggered and second.triggered
    assert len(cluster.executors_for("wc", "split")) == 4


def test_unknown_topology_rejected():
    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=1)
    with pytest.raises(ReconfigurationError):
        cluster.set_parallelism("ghost", "x", 2)


def test_scale_down_below_one_rejected():
    engine, cluster = start_wordcount(splits=2)
    with pytest.raises(ReconfigurationError):
        cluster.set_parallelism("wc", "split", 0)
    engine.run(until=12.0)
    # The topology is untouched.
    assert len(cluster.executors_for("wc", "split")) == 2

"""Golden lock on the default scheduler's placements.

``resource_aware=False`` (the default) must keep scheduling the paper's
benchmark workloads byte-identically to the historic block placement —
the resource-aware path and its cross-topology accounting must not
perturb it. The goldens under ``tests/golden/`` record, for each fig
workload, the full worker->(component, task_index, hostname) map that
the submit path (replica expansion + acker injection included)
produces.

Regenerate after an *intentional* scheduler change with::

    PYTHONPATH=src python tests/test_scheduler_golden.py --regen
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.runtime import TyphoonCluster
from repro.sim.engine import Engine
from repro.streaming.topology import TopologyConfig
from repro.workloads.wordcount import (
    broadcast_topology,
    forwarding_topology,
    word_count_topology,
)
from repro.workloads.yahoo import yahoo_topology

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden",
                           "scheduler_placements.json")

#: name -> (num_hosts, topology factory); configs mirror the fig
#: harness in repro.bench.figures.
WORKLOADS = {
    "fig8_forwarding_local": (1, lambda: forwarding_topology(
        "fwd", TopologyConfig(batch_size=100, acking=False,
                              num_ackers=0))),
    "fig8_forwarding_remote_acked": (2, lambda: forwarding_topology(
        "fwd", TopologyConfig(batch_size=100, acking=True,
                              num_ackers=1))),
    "fig9_broadcast": (2, lambda: broadcast_topology(
        "bc", 4, TopologyConfig(batch_size=100))),
    "fig10_wordcount_fault": (3, lambda: word_count_topology(
        "wc", TopologyConfig(batch_size=100, max_spout_rate=8000.0),
        splits=2, counts=4, words_per_sentence=3, fault_time=20.0)),
    "fig14_yahoo": (3, lambda: yahoo_topology(
        "yahoo", TopologyConfig(batch_size=50),
        allowed_events=("view",))),
}


def _placements(name: str) -> dict:
    num_hosts, factory = WORKLOADS[name]
    typhoon = TyphoonCluster(Engine(), num_hosts=num_hosts)
    physical = typhoon.submit(factory())
    return {
        str(worker_id): [assignment.component, assignment.task_index,
                         assignment.hostname]
        for worker_id, assignment in sorted(physical.assignments.items())
    }


def _golden() -> dict:
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_default_scheduler_matches_golden(name):
    assert _placements(name) == _golden()[name], (
        "default-path placement for %s drifted from tests/golden/"
        "scheduler_placements.json; if the change is intentional, "
        "regenerate with `PYTHONPATH=src python "
        "tests/test_scheduler_golden.py --regen`" % name)


def test_golden_covers_every_workload():
    assert sorted(_golden()) == sorted(WORKLOADS)


if __name__ == "__main__":
    import sys
    if "--regen" not in sys.argv:
        sys.exit("usage: python tests/test_scheduler_golden.py --regen")
    data = {name: _placements(name) for name in sorted(WORKLOADS)}
    with open(GOLDEN_PATH, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % GOLDEN_PATH)

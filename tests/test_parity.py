"""Cross-system consistency: the Storm baseline and Typhoon must compute
the *same answers* on the same workloads — they differ in plumbing, not
semantics. Also covers determinism across repeated runs."""

import pytest

from repro.core import TyphoonCluster
from repro.sim import Engine
from repro.streaming import StormCluster, TopologyConfig
from repro.workloads import word_count_topology
from tests.conftest import simple_chain


def run_wordcount(cluster_class, seed=5, until=20.0):
    engine = Engine()
    cluster = cluster_class(engine, num_hosts=2, seed=seed)
    config = TopologyConfig(batch_size=50, max_spout_rate=1000)
    cluster.submit(word_count_topology("wc", config, splits=2, counts=2,
                                       vocabulary_size=50,
                                       words_per_sentence=3))
    engine.run(until=until)
    cluster.deactivate("wc")
    engine.run(until=until + 5.0)
    merged = {}
    for executor in cluster.executors_for("wc", "count"):
        for word, count in executor.component.counts.items():
            merged[word] = merged.get(word, 0) + count
    source = cluster.executors_for("wc", "source")[0]
    return merged, source.stats.emitted


def test_storm_and_typhoon_same_word_counts():
    storm_counts, storm_emitted = run_wordcount(StormCluster)
    typhoon_counts, typhoon_emitted = run_wordcount(TyphoonCluster)
    # Conservation: every emitted sentence (3 words) is counted exactly
    # once in both systems — zero tuple loss.
    assert sum(storm_counts.values()) == 3 * storm_emitted
    assert sum(typhoon_counts.values()) == 3 * typhoon_emitted
    # Typhoon's spouts start ~2 s later (controller-driven ACTIVATE), so
    # absolute totals differ; the seeded word *distribution* must match.
    assert set(storm_counts) == set(typhoon_counts)
    storm_total = sum(storm_counts.values())
    typhoon_total = sum(typhoon_counts.values())
    for word in sorted(storm_counts):
        assert (storm_counts[word] / storm_total == pytest.approx(
            typhoon_counts[word] / typhoon_total, rel=0.05))


def test_no_tuple_loss_in_either_system():
    for cluster_class in (StormCluster, TyphoonCluster):
        engine = Engine()
        cluster = cluster_class(engine, num_hosts=2, seed=1)
        config = TopologyConfig(batch_size=50, max_spout_rate=1000)
        cluster.submit(simple_chain("c", config=config))
        engine.run(until=15.0)
        cluster_deactivate = getattr(cluster, "deactivate", None)
        if cluster_deactivate is not None and cluster_class is TyphoonCluster:
            cluster.deactivate("c")
            engine.run(until=20.0)
            source = cluster.executors_for("c", "source")[0]
            sink = cluster.executors_for("c", "sink")[0]
            assert sink.stats.processed == source.stats.emitted
        else:
            source = cluster.executors_for("c", "source")[0]
            sink = cluster.executors_for("c", "sink")[0]
            # Allow in-flight batches at the cut-off instant.
            assert sink.stats.processed >= source.stats.emitted - 2 * 50


@pytest.mark.parametrize("cluster_class", [StormCluster, TyphoonCluster])
def test_runs_are_deterministic(cluster_class):
    first, emitted_a = run_wordcount(cluster_class, seed=9, until=10.0)
    second, emitted_b = run_wordcount(cluster_class, seed=9, until=10.0)
    assert first == second
    assert emitted_a == emitted_b


def test_different_seeds_differ():
    first, _ = run_wordcount(StormCluster, seed=1, until=10.0)
    second, _ = run_wordcount(StormCluster, seed=2, until=10.0)
    assert first != second

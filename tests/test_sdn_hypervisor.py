"""Unit tests for the SDN network hypervisor (slice isolation, §8)."""

import pytest

from repro.net import (
    BROADCAST,
    CONTROLLER_ADDRESS,
    TYPHOON_ETHERTYPE,
    EthernetFrame,
    WorkerAddress,
)
from repro.sdn import (
    Bucket,
    ControllerApp,
    GroupMod,
    Match,
    OFPP_CONTROLLER,
    Output,
    PacketOut,
    SetDlDst,
    SoftwareSwitch,
)
from repro.sdn.hypervisor import NetworkHypervisor, SliceViolation
from repro.sim import DEFAULT_COSTS, Engine


@pytest.fixture
def setup(engine):
    hypervisor = NetworkHypervisor(engine, DEFAULT_COSTS)
    switch = SoftwareSwitch(engine, DEFAULT_COSTS, dpid="sw0")
    hypervisor.connect_switch(switch)
    tenant_a = hypervisor.create_slice("tenant-a", {1})
    tenant_b = hypervisor.create_slice("tenant-b", {2})
    return hypervisor, switch, tenant_a, tenant_b


def addr(app, worker):
    return WorkerAddress(app, worker)


def test_slice_can_program_its_own_space(engine, setup):
    _hv, switch, tenant_a, _b = setup
    tenant_a.install_flow("sw0", Match(
        in_port=1, dl_src=addr(1, 10), dl_dst=addr(1, 11),
        ether_type=TYPHOON_ETHERTYPE), [Output(2)])
    engine.run(until=0.01)
    assert len(switch.flows) == 1


def test_cross_slice_match_rejected(engine, setup):
    _hv, _switch, tenant_a, _b = setup
    with pytest.raises(SliceViolation):
        tenant_a.install_flow("sw0", Match(
            dl_src=addr(2, 10), dl_dst=addr(1, 11)), [Output(2)])
    with pytest.raises(SliceViolation):
        tenant_a.install_flow("sw0", Match(
            dl_src=addr(1, 10), dl_dst=addr(2, 11)), [Output(2)])
    assert tenant_a.violations == 2


def test_unanchored_match_rejected(engine, setup):
    _hv, _switch, tenant_a, _b = setup
    with pytest.raises(SliceViolation):
        tenant_a.install_flow("sw0", Match(ether_type=TYPHOON_ETHERTYPE),
                              [Output(2)])
    # But anchoring via in_port is acceptable (a slice-owned port).
    tenant_a.install_flow("sw0", Match(in_port=3, dl_dst=BROADCAST),
                          [Output(2)])


def test_cross_slice_rewrite_rejected(engine, setup):
    _hv, _switch, tenant_a, _b = setup
    with pytest.raises(SliceViolation):
        tenant_a.install_flow("sw0", Match(dl_src=addr(1, 1)),
                              [SetDlDst(addr(2, 5)), Output(2)])
    with pytest.raises(SliceViolation):
        tenant_a.install_group("sw0", 1, "select",
                               [Bucket((SetDlDst(addr(2, 5)), Output(1)))])


def test_cross_slice_packet_out_rejected(engine, setup):
    _hv, _switch, tenant_a, _b = setup
    frame = EthernetFrame(addr(2, 1), CONTROLLER_ADDRESS,
                          TYPHOON_ETHERTYPE, b"ctl")
    with pytest.raises(SliceViolation):
        tenant_a.packet_out("sw0", PacketOut(frame, (Output(1),),
                                             in_port=OFPP_CONTROLLER))


def test_packet_in_routed_to_owning_slice(engine, setup):
    _hv, switch, tenant_a, tenant_b = setup

    class Recorder(ControllerApp):
        name = "rec"

        def __init__(self):
            super().__init__()
            self.packet_ins = []

        def on_packet_in(self, message):
            self.packet_ins.append(message)

    rec_a = tenant_a.register_app(Recorder())
    rec_b = tenant_b.register_app(Recorder())
    port = switch.add_port("w1", lambda f, t: None)
    tenant_a.install_flow("sw0", Match(
        in_port=port, dl_dst=CONTROLLER_ADDRESS), [Output(OFPP_CONTROLLER)])
    engine.run(until=0.01)
    frame = EthernetFrame(CONTROLLER_ADDRESS, addr(1, 7),
                          TYPHOON_ETHERTYPE, b"stats")
    switch.inject(port, frame)
    engine.run(until=0.05)
    assert len(rec_a.packet_ins) == 1
    assert rec_b.packet_ins == []


def test_port_events_shared_across_slices(engine, setup):
    _hv, switch, tenant_a, tenant_b = setup

    class Ports(ControllerApp):
        name = "ports"

        def __init__(self):
            super().__init__()
            self.events = []

        def on_port_status(self, message):
            self.events.append(message.reason)

    ports_a = tenant_a.register_app(Ports())
    ports_b = tenant_b.register_app(Ports())
    port = switch.add_port("w9", lambda f, t: None)
    switch.remove_port(port)
    engine.run(until=1.0)
    assert ports_a.events == ["add", "delete"]
    assert ports_b.events == ["add", "delete"]


def test_overlapping_slices_rejected(engine, setup):
    hypervisor, _switch, _a, _b = setup
    with pytest.raises(ValueError):
        hypervisor.create_slice("tenant-c", {1, 3})
    with pytest.raises(ValueError):
        hypervisor.create_slice("tenant-a", {9})


def test_broadcast_and_controller_addresses_allowed(engine, setup):
    _hv, switch, tenant_a, _b = setup
    tenant_a.install_flow("sw0", Match(
        in_port=1, dl_src=addr(1, 1), dl_dst=BROADCAST), [Output(2)])
    tenant_a.install_flow("sw0", Match(
        in_port=2, dl_dst=CONTROLLER_ADDRESS), [Output(OFPP_CONTROLLER)])
    engine.run(until=0.01)
    assert len(switch.flows) == 2


def test_two_tenants_coexist_on_data_plane(engine, setup):
    _hv, switch, tenant_a, tenant_b = setup
    got_a, got_b = [], []
    p_in = switch.add_port("shared-in", lambda f, t: None)
    p_a = switch.add_port("wa", lambda f, t: got_a.append(f))
    p_b = switch.add_port("wb", lambda f, t: got_b.append(f))
    tenant_a.install_flow("sw0", Match(
        in_port=p_in, dl_src=addr(1, 1), dl_dst=addr(1, 2)), [Output(p_a)])
    tenant_b.install_flow("sw0", Match(
        in_port=p_in, dl_src=addr(2, 1), dl_dst=addr(2, 2)), [Output(p_b)])
    engine.run(until=0.01)
    switch.inject(p_in, EthernetFrame(addr(1, 2), addr(1, 1),
                                      TYPHOON_ETHERTYPE, b"a"))
    switch.inject(p_in, EthernetFrame(addr(2, 2), addr(2, 1),
                                      TYPHOON_ETHERTYPE, b"b"))
    engine.run(until=0.05)
    assert [f.payload for f in got_a] == [b"a"]
    assert [f.payload for f in got_b] == [b"b"]


# -- meter isolation + bandwidth quotas (resource-aware scheduling) -------


def test_meter_ownership_enforced_across_slices(engine, setup):
    _hv, switch, tenant_a, tenant_b = setup
    tenant_a.install_meter("sw0", 7, 50_000.0)
    with pytest.raises(SliceViolation):
        tenant_b.install_meter("sw0", 7, 10_000.0, modify=True)
    with pytest.raises(SliceViolation):
        tenant_b.delete_meter("sw0", 7)
    assert tenant_b.violations == 2
    engine.run(until=0.01)
    # The owner's meter survives the foreign attempts untouched.
    assert switch.meters[7].rate == 50_000.0


def test_meter_delete_releases_ownership(engine, setup):
    _hv, switch, tenant_a, tenant_b = setup
    tenant_a.install_meter("sw0", 7, 50_000.0)
    tenant_a.delete_meter("sw0", 7)
    # Freed id: another slice may claim it now.
    tenant_b.install_meter("sw0", 7, 10_000.0)
    engine.run(until=0.01)
    assert switch.meters[7].rate == 10_000.0


def test_bandwidth_quota_admission_and_release(engine):
    hypervisor = NetworkHypervisor(engine, DEFAULT_COSTS)
    switch = SoftwareSwitch(engine, DEFAULT_COSTS, dpid="sw0")
    hypervisor.connect_switch(switch)
    tenant = hypervisor.create_slice("tenant", {1},
                                     bandwidth_quota=100_000.0)
    tenant.install_meter("sw0", 1, 60_000.0)
    tenant.install_meter("sw0", 2, 40_000.0)
    assert tenant.committed_bandwidth() == 100_000.0
    # The quota is saturated: one more byte/sec is rejected ...
    with pytest.raises(SliceViolation):
        tenant.install_meter("sw0", 3, 1.0)
    # ... and the rejected MeterMod committed nothing.
    assert tenant.committed_bandwidth() == 100_000.0
    # Modifying an existing meter replaces (not adds to) its share.
    tenant.install_meter("sw0", 2, 10_000.0, modify=True)
    assert tenant.committed_bandwidth() == 70_000.0
    tenant.install_meter("sw0", 3, 30_000.0)
    # Deleting releases the commitment for reuse.
    tenant.delete_meter("sw0", 1)
    assert tenant.committed_bandwidth() == 40_000.0
    tenant.install_meter("sw0", 4, 60_000.0)
    engine.run(until=0.01)
    assert sorted(switch.meters) == [2, 3, 4]


def test_bandwidth_quota_is_per_slice(engine, setup):
    hypervisor, _switch, _a, _b = setup
    limited = hypervisor.create_slice("limited", {3},
                                      bandwidth_quota=5_000.0)
    with pytest.raises(SliceViolation):
        limited.install_meter("sw0", 9, 6_000.0)
    # Unquota'd slices meter freely.
    _a.install_meter("sw0", 10, 10_000_000.0)


def test_bandwidth_quota_must_be_positive(engine, setup):
    hypervisor, _switch, _a, _b = setup
    with pytest.raises(ValueError):
        hypervisor.create_slice("broken", {4}, bandwidth_quota=0.0)


def test_group_buckets_validated_like_actions(engine, setup):
    _hv, _switch, tenant_a, _b = setup
    with pytest.raises(SliceViolation):
        tenant_a.send("sw0", GroupMod("add", group_id=1, buckets=[
            Bucket(actions=[SetDlDst(addr(2, 11)), Output(1)])]))
    assert tenant_a.violations == 1

"""Unit tests for the software SDN switch."""

import pytest

from repro.net import BROADCAST, TYPHOON_ETHERTYPE, EthernetFrame, WorkerAddress
from repro.sdn import (
    ADD,
    DELETE,
    FlowMod,
    FlowStatsRequest,
    GroupMod,
    Match,
    Output,
    PacketOut,
    PortStatsRequest,
    PortStatus,
    SetDlDst,
    SetTunnelDst,
    SoftwareSwitch,
    GroupAction,
    Bucket,
    OFPP_CONTROLLER,
    OFPP_TABLE,
)
from repro.sim import DEFAULT_COSTS, Engine


def make_switch(engine):
    return SoftwareSwitch(engine, DEFAULT_COSTS, dpid="sw0")


def typhoon_frame(src, dst, payload=b"data"):
    return EthernetFrame(dst=dst, src=src, ethertype=TYPHOON_ETHERTYPE,
                         payload=payload)


def test_port_add_and_deliver():
    engine = Engine()
    switch = make_switch(engine)
    received = []
    p_in = switch.add_port("w1", lambda f, t: None)
    p_out = switch.add_port("w2", lambda f, t: received.append(f))
    switch.handle_message(FlowMod(ADD, Match(in_port=p_in), (Output(p_out),)))
    engine.run(until=0.01)
    frame = typhoon_frame(WorkerAddress(1, 1), WorkerAddress(1, 2))
    assert switch.inject(p_in, frame)
    engine.run(until=0.02)
    assert received == [frame]
    assert switch.packets_forwarded == 1


def test_table_miss_drops():
    engine = Engine()
    switch = make_switch(engine)
    p_in = switch.add_port("w1", lambda f, t: None)
    frame = typhoon_frame(WorkerAddress(1, 1), WorkerAddress(1, 2))
    assert not switch.inject(p_in, frame)
    assert switch.table_misses == 1


def test_flow_mod_delete():
    engine = Engine()
    switch = make_switch(engine)
    p1 = switch.add_port("w1", lambda f, t: None)
    switch.handle_message(FlowMod(ADD, Match(in_port=p1), (Output(p1),)))
    engine.run(until=0.01)
    assert len(switch.flows) == 1
    switch.handle_message(FlowMod(DELETE, Match(in_port=p1)))
    engine.run(until=0.02)
    assert len(switch.flows) == 0


def test_broadcast_replication_to_multiple_ports():
    engine = Engine()
    switch = make_switch(engine)
    outs = {2: [], 3: [], 4: []}
    p_in = switch.add_port("w1", lambda f, t: None)
    ports = [switch.add_port("w%d" % i,
                             (lambda i: lambda f, t: outs[i].append(f))(i))
             for i in (2, 3, 4)]
    switch.handle_message(FlowMod(
        ADD, Match(in_port=p_in, dl_dst=BROADCAST),
        tuple(Output(p) for p in ports)))
    engine.run(until=0.01)
    frame = typhoon_frame(WorkerAddress(1, 1), BROADCAST)
    switch.inject(p_in, frame)
    engine.run(until=0.02)
    assert all(len(received) == 1 for received in outs.values())


def test_set_tunnel_dst_passes_metadata():
    engine = Engine()
    switch = make_switch(engine)
    seen = []
    p_in = switch.add_port("w1", lambda f, t: None)
    tunnel = switch.add_port("tunnel", lambda f, t: seen.append((f, t)),
                             kind="tunnel")
    switch.handle_message(FlowMod(
        ADD, Match(in_port=p_in),
        (SetTunnelDst("peer-host"), Output(tunnel))))
    engine.run(until=0.01)
    switch.inject(p_in, typhoon_frame(WorkerAddress(1, 1), WorkerAddress(1, 2)))
    engine.run(until=0.02)
    assert seen[0][1] == "peer-host"


def test_set_dl_dst_rewrites_destination():
    engine = Engine()
    switch = make_switch(engine)
    seen = []
    p_in = switch.add_port("w1", lambda f, t: None)
    p_out = switch.add_port("w2", lambda f, t: seen.append(f))
    switch.handle_message(FlowMod(
        ADD, Match(in_port=p_in),
        (SetDlDst(WorkerAddress(1, 99)), Output(p_out))))
    engine.run(until=0.01)
    switch.inject(p_in, typhoon_frame(WorkerAddress(1, 1), WorkerAddress(1, 2)))
    engine.run(until=0.02)
    assert seen[0].dst == WorkerAddress(1, 99)


def test_group_action_select_rewrite():
    engine = Engine()
    switch = make_switch(engine)
    seen = []
    p_in = switch.add_port("w1", lambda f, t: None)
    p2 = switch.add_port("w2", lambda f, t: seen.append(("w2", f.dst)))
    p3 = switch.add_port("w3", lambda f, t: seen.append(("w3", f.dst)))
    switch.handle_message(GroupMod(ADD, 1, "select", (
        Bucket((SetDlDst(WorkerAddress(1, 2)), Output(p2))),
        Bucket((SetDlDst(WorkerAddress(1, 3)), Output(p3))),
    )))
    switch.handle_message(FlowMod(ADD, Match(in_port=p_in),
                                  (GroupAction(1),)))
    engine.run(until=0.01)
    for _ in range(4):
        switch.inject(p_in, typhoon_frame(WorkerAddress(1, 1),
                                          WorkerAddress(1, 0xE0000000)))
    engine.run(until=0.02)
    names = [name for name, _dst in seen]
    assert names.count("w2") == 2
    assert names.count("w3") == 2
    # Destination addresses were rewritten to the real workers.
    assert all(dst in (WorkerAddress(1, 2), WorkerAddress(1, 3))
               for _n, dst in seen)


def test_output_to_controller_packet_in():
    engine = Engine()
    switch = make_switch(engine)
    events = []
    switch.connect_controller(events.append)
    p_in = switch.add_port("w1", lambda f, t: None)
    switch.handle_message(FlowMod(ADD, Match(in_port=p_in),
                                  (Output(OFPP_CONTROLLER),)))
    engine.run(until=0.01)
    switch.inject(p_in, typhoon_frame(WorkerAddress(1, 1), WorkerAddress(1, 2)))
    engine.run(until=0.05)
    packet_ins = [e for e in events if type(e).__name__ == "PacketIn"]
    assert len(packet_ins) == 1
    assert packet_ins[0].in_port == p_in


def test_packet_out_with_table_resubmit():
    engine = Engine()
    switch = make_switch(engine)
    received = []
    p_out = switch.add_port("w1", lambda f, t: received.append(f))
    switch.handle_message(FlowMod(
        ADD, Match(in_port=OFPP_CONTROLLER), (Output(p_out),)))
    engine.run(until=0.01)
    frame = typhoon_frame(WorkerAddress(1, 1), WorkerAddress(1, 1))
    switch.handle_message(PacketOut(frame, (Output(OFPP_TABLE),),
                                    in_port=OFPP_CONTROLLER))
    engine.run(until=0.02)
    assert received == [frame]


def test_port_status_events_reach_controller():
    engine = Engine()
    switch = make_switch(engine)
    events = []
    switch.connect_controller(events.append)
    port = switch.add_port("w5", lambda f, t: None)
    switch.remove_port(port)
    engine.run(until=1.0)
    status = [e for e in events if isinstance(e, PortStatus)]
    assert [s.reason for s in status] == ["add", "delete"]
    assert all(s.port_name == "w5" for s in status)


def test_output_to_removed_port_drops():
    engine = Engine()
    switch = make_switch(engine)
    p_in = switch.add_port("w1", lambda f, t: None)
    p_out = switch.add_port("w2", lambda f, t: None)
    switch.handle_message(FlowMod(ADD, Match(in_port=p_in), (Output(p_out),)))
    engine.run(until=0.01)
    switch.remove_port(p_out)
    switch.inject(p_in, typhoon_frame(WorkerAddress(1, 1), WorkerAddress(1, 2)))
    engine.run(until=0.02)
    assert switch.packets_dropped == 1


def test_backlog_overflow_drops():
    engine = Engine()
    switch = make_switch(engine)
    received = []
    p_in = switch.add_port("w1", lambda f, t: None)
    p_out = switch.add_port("w2", lambda f, t: received.append(f))
    switch.handle_message(FlowMod(ADD, Match(in_port=p_in), (Output(p_out),)))
    engine.run(until=0.01)
    frame = typhoon_frame(WorkerAddress(1, 1), WorkerAddress(1, 2),
                          payload=b"x" * 8000)
    # Inject far more than the switch can forward instantaneously.
    injected = sum(switch.inject(p_in, frame) for _ in range(100000))
    assert switch.packets_dropped > 0
    assert injected < 100000


def test_flow_and_port_stats_replies():
    engine = Engine()
    switch = make_switch(engine)
    events = []
    switch.connect_controller(events.append)
    p_in = switch.add_port("w1", lambda f, t: None)
    p_out = switch.add_port("w2", lambda f, t: None)
    switch.handle_message(FlowMod(ADD, Match(in_port=p_in), (Output(p_out),)))
    engine.run(until=0.01)
    switch.inject(p_in, typhoon_frame(WorkerAddress(1, 1), WorkerAddress(1, 2)))
    engine.run(until=0.02)
    switch.handle_message(FlowStatsRequest(Match()))
    switch.handle_message(PortStatsRequest())
    engine.run(until=0.05)
    flow_replies = [e for e in events if type(e).__name__ == "FlowStatsReply"]
    port_replies = [e for e in events if type(e).__name__ == "PortStatsReply"]
    assert flow_replies[0].entries[0].packets == 1
    stats_by_name = {e.port_name: e for e in port_replies[0].entries}
    assert stats_by_name["w1"].rx_packets == 1
    assert stats_by_name["w2"].tx_packets == 1


def test_idle_timeout_sweeper_emits_flow_removed():
    engine = Engine()
    switch = make_switch(engine)
    events = []
    switch.connect_controller(events.append)
    p_in = switch.add_port("w1", lambda f, t: None)
    switch.handle_message(FlowMod(ADD, Match(in_port=p_in), (Output(p_in),),
                                  idle_timeout=2.0))
    engine.run(until=5.0)
    removed = [e for e in events if type(e).__name__ == "FlowRemoved"]
    assert len(removed) == 1
    assert removed[0].reason == "idle_timeout"
    assert len(switch.flows) == 0

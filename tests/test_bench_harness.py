"""Unit tests for the bench harness rendering utilities."""

import pytest

from repro.bench.harness import (
    ExperimentResult,
    Series,
    format_series,
    format_table,
)
from repro.sim import Engine, RateMeter


def test_format_table_alignment():
    text = format_table("title", ("a", "bb"), [["x", 1], ["yyy", 22.5]])
    lines = text.splitlines()
    assert lines[0] == "title"
    assert "a" in lines[2] and "bb" in lines[2]
    assert "22.50" in text


def test_format_table_float_formatting():
    text = format_table("t", ("v",), [[0.12345], [1234.5], [2.5], [0]])
    assert "0.1234" in text or "0.1235" in text
    assert "1234" in text
    assert "2.50" in text


def test_series_from_rate_meter():
    engine = Engine()
    meter = RateMeter(engine, "m")

    def producer():
        for _ in range(10):
            meter.mark(5)
            yield 0.5

    engine.process(producer())
    engine.run()
    series = Series.from_timeseries("m", meter.series(0, 5))
    assert series.points
    assert series.mean_between(0, 4) > 0
    assert series.value_near(0.0) == 10.0  # 2 marks of 5 in bucket 0


def test_series_helpers_empty():
    series = Series("empty", [])
    assert series.value_near(1.0) == 0.0
    assert series.mean_between(0, 1) == 0.0
    assert series.max_between(0, 1) == 0.0


def test_format_series_renders_marks():
    a = Series("alpha", [(0, 1.0), (1, 2.0), (2, 3.0)])
    b = Series("beta", [(0, 3.0), (1, 2.0), (2, 1.0)])
    text = format_series("chart", [a, b])
    assert "chart" in text
    assert "[0] alpha" in text
    assert "[1] beta" in text
    assert "0" in text and "1" in text


def test_format_series_no_data():
    text = format_series("chart", [Series("x", [])])
    assert "(no data)" in text


def test_experiment_result_render():
    result = ExperimentResult("Fig X")
    result.add_table("numbers", ("k", "v"), [["a", 1]])
    result.add_series(Series("line", [(0, 1), (1, 2)]))
    result.scalars["metric"] = 42.0
    text = result.render()
    assert "=== Fig X ===" in text
    assert "numbers" in text
    assert "line" in text
    assert "metric" in text

"""Unit tests for the logical topology builder and reconfiguration ops."""

import pytest

from repro.streaming import (
    ALL,
    FIELDS,
    Bolt,
    Grouping,
    SHUFFLE,
    Spout,
    TopologyBuilder,
    TopologyConfig,
    TopologyError,
)


class DummySpout(Spout):
    def next_tuple(self, collector):
        pass


class DummyBolt(Bolt):
    def execute(self, stream_tuple, collector):
        pass


def wordcount_builder():
    builder = TopologyBuilder("wc")
    builder.set_spout("input", DummySpout, 1)
    builder.set_bolt("split", DummyBolt, 2).shuffle_grouping("input")
    builder.set_bolt("count", DummyBolt, 4,
                     stateful=True).fields_grouping("split", [0])
    return builder


def test_build_wordcount():
    topology = wordcount_builder().build()
    assert topology.total_workers() == 7
    assert [n.name for n in topology.spouts()] == ["input"]
    assert len(topology.bolts()) == 2
    assert topology.outgoing("input")[0].dst == "split"
    assert topology.incoming("count")[0].grouping.kind == FIELDS


def test_duplicate_node_rejected():
    builder = TopologyBuilder("t")
    builder.set_spout("a", DummySpout)
    with pytest.raises(TopologyError):
        builder.set_bolt("a", DummyBolt)


def test_edge_to_unknown_node_rejected():
    builder = TopologyBuilder("t")
    builder.set_spout("src", DummySpout)
    builder.set_bolt("sink", DummyBolt).shuffle_grouping("ghost")
    with pytest.raises(TopologyError):
        builder.build()


def test_spout_cannot_have_inputs():
    builder = TopologyBuilder("t")
    builder.set_spout("a", DummySpout)
    builder.set_spout("b", DummySpout)
    builder._add_edge("a", "b", Grouping(SHUFFLE), 0)
    with pytest.raises(TopologyError):
        builder.build()


def test_cycle_rejected():
    builder = TopologyBuilder("t")
    builder.set_spout("src", DummySpout)
    builder.set_bolt("x", DummyBolt).shuffle_grouping("src")
    builder.set_bolt("y", DummyBolt).shuffle_grouping("x")
    builder._add_edge("y", "x", Grouping(SHUFFLE), 0)
    with pytest.raises(TopologyError):
        builder.build()


def test_topology_needs_spout():
    builder = TopologyBuilder("t")
    builder.set_bolt("only", DummyBolt)
    with pytest.raises(TopologyError):
        builder.build()


def test_stateful_requires_key_based_routing():
    builder = TopologyBuilder("t")
    builder.set_spout("src", DummySpout)
    builder.set_bolt("state", DummyBolt, stateful=True).shuffle_grouping("src")
    with pytest.raises(TopologyError):
        builder.build()


def test_stateful_global_routing_allowed():
    builder = TopologyBuilder("t")
    builder.set_spout("src", DummySpout)
    builder.set_bolt("state", DummyBolt, stateful=True).global_grouping("src")
    builder.build()  # no error


def test_grouping_validation():
    with pytest.raises(TopologyError):
        Grouping("teleport")
    with pytest.raises(TopologyError):
        Grouping(FIELDS)  # fields grouping without fields
    with pytest.raises(TopologyError):
        Grouping(SHUFFLE, (0,))  # fields on non-fields grouping


def test_parallelism_validation():
    builder = TopologyBuilder("t")
    with pytest.raises(TopologyError):
        builder.set_spout("src", DummySpout, parallelism=0)


def test_with_parallelism_copies():
    topology = wordcount_builder().build()
    scaled = topology.with_parallelism("split", 5)
    assert scaled.node("split").parallelism == 5
    assert topology.node("split").parallelism == 2  # original untouched
    assert scaled.version == topology.version + 1


def test_with_factory_swaps_logic():
    topology = wordcount_builder().build()

    class NewBolt(DummyBolt):
        pass

    updated = topology.with_factory("split", NewBolt)
    assert updated.node("split").factory is NewBolt
    assert topology.node("split").factory is not NewBolt


def test_with_grouping_replaces_edge():
    topology = wordcount_builder().build()
    updated = topology.with_grouping("input", "split", Grouping(ALL))
    assert updated.outgoing("input")[0].grouping.kind == ALL
    assert topology.outgoing("input")[0].grouping.kind == SHUFFLE
    with pytest.raises(TopologyError):
        topology.with_grouping("input", "count", Grouping(ALL))


def test_with_grouping_validates_stateful():
    topology = wordcount_builder().build()
    with pytest.raises(TopologyError):
        # count is stateful: shuffling its input is illegal (Table 4).
        topology.with_grouping("split", "count", Grouping(SHUFFLE))


def test_config_defaults():
    config = TopologyConfig()
    assert not config.acking
    assert config.batch_size == 100
    assert config.tuple_timeout == 30.0

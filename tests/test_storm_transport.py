"""Focused unit tests for the Storm TCP transport."""

import pytest

from repro.sim import DEFAULT_COSTS, Engine, MetricsRegistry
from repro.sim.rng import SeedFactory
from repro.streaming import (
    Delivery,
    LogicalNode,
    StreamTuple,
    TopologyConfig,
    WorkerAssignment,
    WorkerExecutor,
)
from repro.streaming.storm import StormTransport, WorkerRegistry
from repro.streaming.topology import BOLT, Bolt


class Sink(Bolt):
    def execute(self, stream_tuple, collector):
        pass


def make_executor(engine, registry, worker_id, hostname="host-0"):
    executor = WorkerExecutor(
        engine=engine, costs=DEFAULT_COSTS,
        assignment=WorkerAssignment(worker_id, "c", 0, hostname),
        node=LogicalNode("c", BOLT, Sink), config=TopologyConfig(),
        transport=StormTransport(engine, DEFAULT_COSTS, worker_id, hostname,
                                 registry),
        routers={}, metrics=MetricsRegistry(engine),
        rng=SeedFactory(0).rng("w%d" % worker_id), topology_id="t",
    )
    registry.register(executor, hostname)
    executor.start()
    return executor


def make_sender(engine, registry, hostname="host-0", batch=2):
    return StormTransport(engine, DEFAULT_COSTS, 100, hostname, registry,
                          batch_size=batch)


def test_batched_delivery(engine):
    registry = WorkerRegistry()
    receiver = make_executor(engine, registry, 1)
    sender = make_sender(engine, registry, batch=2)
    engine.run(until=0.01)
    cost = sender.send(StreamTuple(("a",)), [1])
    cost += sender.send(StreamTuple(("b",)), [1])  # triggers flush
    assert cost > 0
    engine.run(until=0.1)
    assert receiver.stats.processed == 2


def test_flush_partial_batch(engine):
    registry = WorkerRegistry()
    receiver = make_executor(engine, registry, 1)
    sender = make_sender(engine, registry, batch=100)
    engine.run(until=0.01)
    sender.send(StreamTuple(("only",)), [1])
    engine.run(until=0.1)
    assert receiver.stats.processed == 0  # still buffered
    sender.flush()
    engine.run(until=0.2)
    assert receiver.stats.processed == 1


def test_send_to_dead_worker_counts_lost(engine):
    registry = WorkerRegistry()
    receiver = make_executor(engine, registry, 1)
    sender = make_sender(engine, registry, batch=1)
    engine.run(until=0.01)
    receiver.kill()
    engine.run(until=0.02)
    sender.send(StreamTuple(("gone",)), [1])
    engine.run(until=0.1)
    assert registry.lost_tuples == 1


def test_send_to_unknown_worker_counts_lost(engine):
    registry = WorkerRegistry()
    sender = make_sender(engine, registry, batch=1)
    sender.send(StreamTuple(("nowhere",)), [404])
    assert registry.lost_tuples == 1


def test_relocation_reroutes_via_registry(engine):
    registry = WorkerRegistry()
    first = make_executor(engine, registry, 1, hostname="host-0")
    sender = make_sender(engine, registry, batch=1)
    engine.run(until=0.01)
    sender.send(StreamTuple(("before",)), [1])
    engine.run(until=0.1)
    assert first.stats.processed == 1
    # Relocate worker 1: new executor on another host, same id.
    first.kill()
    second = make_executor(engine, registry, 1, hostname="host-1")
    engine.run(until=0.2)
    sender.send(StreamTuple(("after",)), [1])
    engine.run(until=0.4)
    assert second.stats.processed == 1
    assert registry.lost_tuples == 0


def test_per_destination_channels_are_cached(engine):
    registry = WorkerRegistry()
    make_executor(engine, registry, 1)
    make_executor(engine, registry, 2)
    sender = make_sender(engine, registry, batch=1)
    engine.run(until=0.01)
    for _ in range(3):
        sender.send(StreamTuple(("x",)), [1])
        sender.send(StreamTuple(("x",)), [2])
    assert len(sender._channels) == 2


def test_closed_transport_drops_sends(engine):
    registry = WorkerRegistry()
    make_executor(engine, registry, 1)
    sender = make_sender(engine, registry, batch=1)
    sender.close()
    assert sender.send(StreamTuple(("late",)), [1]) == 0.0
    assert sender.tuples_sent == 0


def test_broadcast_serializes_per_destination(engine):
    registry = WorkerRegistry()
    for worker_id in (1, 2, 3):
        make_executor(engine, registry, worker_id)
    sender = make_sender(engine, registry, batch=10)
    engine.run(until=0.01)
    sender.send_broadcast(StreamTuple(("fanout",)), [1, 2, 3])
    assert sender.serializations == 3  # the Storm broadcast penalty


def test_offloaded_falls_back_to_round_robin(engine):
    registry = WorkerRegistry()
    a = make_executor(engine, registry, 1)
    b = make_executor(engine, registry, 2)
    sender = make_sender(engine, registry, batch=1)
    engine.run(until=0.01)
    for _ in range(4):
        sender.send_offloaded(StreamTuple(("x",)), ("edge", 0), [1, 2])
    engine.run(until=0.2)
    assert a.stats.processed == 2
    assert b.stats.processed == 2

"""Determinism locks for the calendar-queue engine rebuild.

The rebuilt kernel (:class:`repro.sim.engine.Engine`) must execute
exactly the schedule the pre-rebuild single-heap kernel executed — same
callbacks, same order, same clock readings — for any workload. These
tests replay randomized seeded workloads (plain callbacks, same-time
bursts, timers with racing cancellations, interruptible processes,
succeed/fail events with multiple waiters) on both kernels and assert
the execution logs are identical, and pin one fixed workload's full
event order to a committed golden trace so future scheduler changes
cannot silently reorder anything.

The bounded-heap tests lock the lazy-deletion compaction policy: a
cancel/reschedule churn loop must not accumulate dead entries or
allocate an entry record per scheduled event.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.bench.legacy import LegacyEngine
from repro.sim import Engine, Interrupt

_GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden",
                            "engine_event_order.txt")


# -- randomized workload script ----------------------------------------------


def _build_script(seed):
    """A deterministic op list; interpreting it never consumes the rng,
    so both kernels see byte-identical workloads."""
    rng = random.Random(seed)
    ops = []
    for i in range(120):
        ops.append(("cb", rng.uniform(0.0, 4.0), "cb%d" % i))
    for i in range(40):
        # Same-timestamp bursts: FIFO among equal deadlines is the
        # property the batch executor must preserve.
        ops.append(("cb", rng.choice([0.25, 1.0, 3.0]), "dup%d" % i))
    for i in range(40):
        create_at = rng.uniform(0.0, 3.0)
        duration = rng.uniform(0.0, 2.0)
        cancel_at = rng.uniform(0.0, 4.0) if rng.random() < 0.6 else None
        ops.append(("timer", create_at, duration, cancel_at, "t%d" % i))
    for i in range(25):
        steps = [rng.uniform(0.0, 1.0) for _ in range(rng.randrange(1, 5))]
        interrupt_at = rng.uniform(0.0, 3.0) if rng.random() < 0.4 else None
        ops.append(("proc", steps, interrupt_at, "p%d" % i))
    for i in range(15):
        fire_at = rng.uniform(0.0, 4.0)
        fail = rng.random() < 0.3
        waiters = rng.randrange(1, 4)
        ops.append(("event", fire_at, fail, waiters, "e%d" % i))
    return ops


def _replay(make_engine, script):
    """Run the script; returns [(now, tag), ...] in execution order."""
    eng = make_engine()
    log = []

    def note(tag):
        log.append((eng.now, tag))

    for op in script:
        kind = op[0]
        if kind == "cb":
            _, when, tag = op
            eng.schedule(when, note, tag)
        elif kind == "timer":
            _, create_at, duration, cancel_at, tag = op

            def create(duration=duration, cancel_at=cancel_at, tag=tag):
                timer = eng.timeout(duration)
                timer.add_callback(lambda _ev: note(tag + ".fired"))
                if cancel_at is not None:
                    delay = max(0.0, cancel_at - eng.now)

                    def do_cancel(timer=timer, tag=tag):
                        timer.cancel()
                        note(tag + ".cancel")

                    eng.schedule(delay, do_cancel)

            eng.schedule(create_at, create)
        elif kind == "proc":
            _, steps, interrupt_at, tag = op

            def body(steps=steps, tag=tag):
                try:
                    for j, delay in enumerate(steps):
                        yield delay
                        note("%s.%d" % (tag, j))
                except Interrupt:
                    note(tag + ".interrupted")

            proc = eng.process(body(), name=tag)
            if interrupt_at is not None:

                def do_interrupt(proc=proc, tag=tag):
                    if proc.alive:
                        proc.interrupt(tag)
                    note(tag + ".intreq")

                eng.schedule(interrupt_at, do_interrupt)
        elif kind == "event":
            _, fire_at, fail, waiters, tag = op
            event = eng.event()
            for w in range(waiters):

                def wait_body(event=event, tag=tag, w=w):
                    try:
                        value = yield event
                        note("%s.w%d=%s" % (tag, w, value))
                    except RuntimeError:
                        note("%s.w%d.failed" % (tag, w))

                eng.process(wait_body(), name="%s.w%d" % (tag, w))

            def fire(event=event, fail=fail, tag=tag):
                if fail:
                    event.fail(RuntimeError(tag))
                else:
                    event.succeed(tag)
                note(tag + ".fired")

            eng.schedule(fire_at, fire)
    eng.run()
    return eng.now, log


@pytest.mark.parametrize("seed", range(6))
def test_engine_matches_legacy_event_order(seed):
    script = _build_script(seed)
    legacy_now, legacy_log = _replay(LegacyEngine, script)
    new_now, new_log = _replay(Engine, script)
    assert new_log == legacy_log
    assert new_now == legacy_now


def test_golden_event_order_trace():
    """One fixed workload's full execution order, pinned byte-for-byte.

    Regenerate (only for an intentional, understood schedule change) by
    running this module's ``_regenerate_golden()`` and committing the
    diff.
    """
    _now, log = _replay(Engine, _build_script(2026))
    rendered = _render(log)
    with open(_GOLDEN_PATH, "r", encoding="utf-8") as fh:
        assert fh.read() == rendered


def _render(log):
    return "".join("%r %s\n" % (now, tag) for now, tag in log)


def _regenerate_golden():  # pragma: no cover - maintenance helper
    _now, log = _replay(Engine, _build_script(2026))
    with open(_GOLDEN_PATH, "w", encoding="utf-8") as fh:
        fh.write(_render(log))


# -- bounded-heap / allocation locks -----------------------------------------


def test_cancel_reschedule_churn_stays_bounded():
    """100k cancel/reschedule cycles: lazy deletion must compact, not
    accumulate — the pre-fix kernel kept every cancelled entry queued
    until its deadline surfaced at the heap top."""
    eng = Engine()
    for _ in range(100_000):
        eng.timeout(5.0).cancel()
    fired = []
    keeper = eng.timeout(5.0)
    keeper.add_callback(lambda _ev: fired.append(eng.now))

    stats = eng.stats()
    assert eng.pending_count == 1
    # Dead entries never pile up: the high-water mark stays near the
    # compaction threshold, orders of magnitude below the churn count.
    assert stats["cancelled_high_water"] < 5_000
    assert stats["compactions"] > 0
    # The structures really are small (not just flagged dead).
    queued = len(eng._overflow) + sum(
        len(bucket) for bucket in eng._slots.values())
    assert queued < 5_000
    # Entry records are recycled through the free list, not reallocated
    # per cycle.
    assert stats["entry_reuses"] > 90_000
    assert stats["entry_allocs"] < 10_000

    eng.run()
    assert fired == [5.0]


def test_interleaved_churn_fires_survivors_in_order():
    """Cancel churn interleaved with live timers: every survivor fires,
    in deadline order, with the dead entries swept around them."""
    eng = Engine()
    fired = []
    for i in range(20_000):
        deadline = 1.0 + (i % 97) * 0.01
        timer = eng.timeout(deadline)
        if i % 5 == 0:
            timer.add_callback(
                lambda _ev, i=i: fired.append((eng.now, i)))
        else:
            timer.cancel()
    eng.run()
    assert len(fired) == 4_000
    assert fired == sorted(fired, key=lambda pair: (pair[0], pair[1]))
    assert eng.pending_count == 0

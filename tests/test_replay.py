"""Framework-level spout replay: unit tests for the buffer's retry
bookkeeping plus end-to-end at-least-once runs with *plain* spouts (no
application replay logic — the framework closes the loop)."""

import pytest

from repro.core import TyphoonCluster
from repro.sim import Engine
from repro.streaming import (
    REPLAY_SERVICE,
    Bolt,
    ReplayBuffer,
    Spout,
    StormCluster,
    TopologyBuilder,
    TopologyConfig,
)


class CountingSpout(Spout):
    """Emits (payload, seq) at max speed, optionally up to a limit."""

    def __init__(self, limit=None):
        self.limit = limit
        self.seq = 0

    def next_tuple(self, collector):
        if self.limit is not None and self.seq >= self.limit:
            return
        collector.emit(("x", self.seq), message_id=self.seq)
        self.seq += 1


# -- unit: ReplayBuffer ------------------------------------------------------


def test_backoff_schedule_is_deterministic_and_capped():
    buffer = ReplayBuffer(1, max_retries=8, backoff_base=0.25,
                          backoff_factor=2.0, backoff_max=2.0)
    delays = [buffer.backoff_delay(n) for n in range(1, 7)]
    assert delays == [0.25, 0.5, 1.0, 2.0, 2.0, 2.0]
    # Same inputs, same schedule — no randomized jitter anywhere.
    again = ReplayBuffer(2, max_retries=8, backoff_base=0.25,
                         backoff_factor=2.0, backoff_max=2.0)
    assert [again.backoff_delay(n) for n in range(1, 7)] == delays


def test_retry_budget_exhaustion_marks_message_lost():
    buffer = ReplayBuffer(1, max_retries=2, backoff_base=0.1,
                          backoff_factor=2.0, backoff_max=1.0)
    buffer.register_root(100, "m0", ("x", 0), 0)
    out1 = buffer.on_failed(100, now=1.0)
    assert out1[0] == "scheduled" and out1[2] == pytest.approx(1.1)
    [entry] = buffer.take_due(now=1.2, limit=10)
    buffer.register_root(101, entry.message_id, entry.values, entry.stream)
    out2 = buffer.on_failed(101, now=2.0)
    assert out2[0] == "scheduled" and out2[2] == pytest.approx(2.2)
    [entry] = buffer.take_due(now=2.3, limit=10)
    buffer.register_root(102, entry.message_id, entry.values, entry.stream)
    # Third failure: both retries are spent.
    outcome, message_id, due = buffer.on_failed(102, now=3.0)
    assert outcome == "exhausted" and message_id == "m0" and due is None
    assert buffer.exhausted == 1 and buffer.pending_count() == 0
    assert buffer.conserved()
    # Every root id of the dead message is forgotten.
    assert not buffer.has_root(100) and not buffer.has_root(102)


def test_late_complete_settles_message_and_cancels_replay():
    buffer = ReplayBuffer(1)
    buffer.register_root(7, "m", ("x",), 0)
    buffer.on_failed(7, now=1.0)  # replay queued
    # The original tree completes after all (the timeout was premature).
    message_id, first = buffer.on_complete(7)
    assert message_id == "m" and first
    assert buffer.take_due(now=99.0, limit=10) == []
    assert buffer.completed == 1 and buffer.conserved()
    # A second COMPLETE for the same (now unknown) root is a no-op.
    assert buffer.on_complete(7) == (None, False)


def test_superseded_root_completion_does_not_double_count():
    buffer = ReplayBuffer(1)
    buffer.register_root(7, "m", ("x",), 0)
    buffer.on_failed(7, now=1.0)
    [entry] = buffer.take_due(now=2.0, limit=10)
    buffer.register_root(8, entry.message_id, entry.values, entry.stream)
    # Replay incarnation completes; then the old tree's COMPLETE arrives.
    assert buffer.on_complete(8) == ("m", True)
    assert buffer.on_complete(7) == (None, False)
    assert buffer.completed == 1 and buffer.conserved()


def test_crash_reschedule_is_retry_budget_free():
    buffer = ReplayBuffer(1, max_retries=1)
    buffer.register_root(1, "a", ("x",), 0)
    buffer.register_root(2, "b", ("y",), 0)
    buffer.on_failed(2, now=0.5)  # "b" already awaiting replay
    assert buffer.reschedule_open(now=3.0) == 1  # only in-flight "a"
    assert buffer.recovered == 1
    due = buffer.take_due(now=3.0, limit=10)
    # "b"'s ordinary backoff (due 0.75) has elapsed too; it drains first.
    assert [entry.message_id for entry in due] == ["b", "a"]
    # The crash replay consumed no budget: a real timeout still schedules.
    buffer.register_root(3, "a", ("x",), 0)
    assert buffer.on_failed(3, now=4.0)[0] == "scheduled"


def test_take_due_orders_by_due_time_then_emission_order():
    buffer = ReplayBuffer(1, backoff_base=1.0, backoff_factor=1.0,
                          backoff_max=1.0)
    for index, message in enumerate(("m0", "m1", "m2")):
        buffer.register_root(index, message, ("x", index), 0)
    buffer.on_failed(1, now=0.0)   # due 1.0
    buffer.on_failed(0, now=0.0)   # due 1.0, but emitted earlier
    buffer.on_failed(2, now=0.5)   # due 1.5
    taken = buffer.take_due(now=2.0, limit=10)
    assert [entry.message_id for entry in taken] == ["m0", "m1", "m2"]


# -- end-to-end: plain spout, framework replay -------------------------------


class CrashTwiceSink(Bolt):
    """Dies on two trigger sequence numbers; queued tuples die with it."""

    crashes = []
    seen = set()

    def execute(self, stream_tuple, collector):
        seq = stream_tuple[1]
        if seq in (40, 120) and seq not in CrashTwiceSink.crashes:
            CrashTwiceSink.crashes.append(seq)
            raise RuntimeError("sink died at %d" % seq)
        CrashTwiceSink.seen.add(seq)


def _replay_config(**overrides):
    base = dict(acking=True, num_ackers=1, tuple_timeout=2.0,
                batch_size=10, max_spout_rate=300, max_pending=30,
                replay_enabled=True, replay_max_retries=8,
                replay_backoff_base=0.25, replay_backoff_factor=2.0,
                replay_backoff_max=1.0)
    base.update(overrides)
    return TopologyConfig(**base)


@pytest.mark.parametrize("cluster_class", [StormCluster, TyphoonCluster])
def test_framework_replay_with_plain_spout(cluster_class):
    """A spout with *no* ack/fail logic still gets at-least-once
    delivery: the framework buffer replays what the sink crashes lose."""
    CrashTwiceSink.crashes = []
    CrashTwiceSink.seen = set()
    engine = Engine()
    cluster = cluster_class(engine, num_hosts=1, seed=11)
    builder = TopologyBuilder("replayed", _replay_config())
    builder.set_spout("source", lambda: CountingSpout(200), 1)
    builder.set_bolt("sink", CrashTwiceSink, 1).shuffle_grouping("source")
    cluster.submit(builder.build())
    engine.run(until=40.0)
    assert CrashTwiceSink.crashes == [40, 120]
    assert CrashTwiceSink.seen == set(range(200))
    [buffer] = cluster.services[REPLAY_SERVICE].buffers.values()
    stats = buffer.stats()
    assert stats["registered"] == 200
    assert stats["completed"] == 200
    assert stats["exhausted"] == 0 and stats["pending"] == 0
    assert stats["replays"] > 0
    assert buffer.conserved()


def test_max_pending_caps_in_flight_roots():
    """Backpressure: the spout never holds more than max_pending open
    tuple trees, so a slow/failed consumer cannot blow up the buffer."""

    class SlowSink(Bolt):
        def execute(self, stream_tuple, collector):
            collector.charge(5e-3)

    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=1, seed=5)
    builder = TopologyBuilder("pressured",
                              _replay_config(max_pending=8, max_spout_rate=None))
    builder.set_spout("source", CountingSpout, 1)
    builder.set_bolt("sink", SlowSink, 1).shuffle_grouping("source")
    cluster.submit(builder.build())

    high_water = []

    def sample():
        executors = cluster.executors_for("pressured", "source")
        if executors:  # worker may still be deploying early on
            high_water.append(len(executors[0].pending_roots))
        if engine.now < 4.5:
            engine.schedule(0.1, sample)

    engine.schedule(0.5, sample)
    engine.run(until=5.0)
    assert high_water and max(high_water) <= 8
    [buffer] = cluster.services[REPLAY_SERVICE].buffers.values()
    assert buffer.pending_count() <= 8 + buffer.completed  # sanity
    assert buffer.conserved()


class AlwaysCrashSink(Bolt):
    """Explicitly FAILs every delivery of the poison sequence number
    (the application-level reject path — no worker crash, so only the
    poison message itself burns retry budget)."""

    poison = 10
    rejections = 0
    seen = set()

    def execute(self, stream_tuple, collector):
        if stream_tuple[1] == AlwaysCrashSink.poison:
            AlwaysCrashSink.rejections += 1
            collector.fail(stream_tuple)
            return
        AlwaysCrashSink.seen.add(stream_tuple[1])


def test_retry_budget_exhaustion_end_to_end():
    """A poison message fails every replay; the budget bounds the damage
    and Spout.fail fires exactly once, on exhaustion."""
    AlwaysCrashSink.rejections = 0
    AlwaysCrashSink.seen = set()

    class FailRecordingSpout(CountingSpout):
        failed = []

        def fail(self, message_id):
            FailRecordingSpout.failed.append(message_id)

    FailRecordingSpout.failed = []
    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=1, seed=6)
    builder = TopologyBuilder(
        "poisoned",
        _replay_config(replay_max_retries=3, max_spout_rate=100))
    builder.set_spout("source", lambda: FailRecordingSpout(30), 1)
    builder.set_bolt("sink", AlwaysCrashSink, 1).shuffle_grouping("source")
    cluster.submit(builder.build())
    engine.run(until=60.0)
    [buffer] = cluster.services[REPLAY_SERVICE].buffers.values()
    assert buffer.exhausted == 1
    assert FailRecordingSpout.failed == [AlwaysCrashSink.poison]
    # 1 first try + 3 replays, each rejected by the sink.
    assert AlwaysCrashSink.rejections == 4
    # Everything that wasn't poison completed.
    assert AlwaysCrashSink.seen == set(range(30)) - {10}
    assert buffer.completed == 29 and buffer.conserved()


def test_replay_buffer_survives_spout_crash():
    """The buffer lives in cluster.services, so a relaunched spout
    re-attaches and immediately replays what was in flight."""
    from repro.sim.faults import kill_worker_at

    class TailRecorder(Bolt):
        seen = set()

        def execute(self, stream_tuple, collector):
            # Slow enough that the spout always has trees in flight, so
            # the crash is guaranteed to strand some of them.
            collector.charge(2e-3)
            TailRecorder.seen.add(stream_tuple[1])

    TailRecorder.seen = set()
    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=1, seed=9)
    builder = TopologyBuilder("durable", _replay_config(max_spout_rate=150))
    builder.set_spout("source", lambda: CountingSpout(250), 1)
    builder.set_bolt("sink", TailRecorder, 1).shuffle_grouping("source")
    physical = cluster.submit(builder.build())
    [spout_id] = physical.worker_ids_for("source")
    # Deployment + spout activation take ~2s; crash mid-stream after that.
    kill_worker_at(cluster, spout_id, when=3.0, reason="test crash")
    engine.run(until=40.0)
    buffer = cluster.services[REPLAY_SERVICE].buffers[spout_id]
    assert buffer.recovered > 0  # in-flight messages re-scheduled on restart
    assert buffer.conserved() and buffer.exhausted == 0
    assert buffer.pending_count() == 0
    # The relaunched CountingSpout restarts its sequence at 0 (it keeps
    # no durable state), but every message the *buffer* tracked settled.
    assert buffer.completed == buffer.registered
    assert set(range(250)) <= TailRecorder.seen

"""Integration tests for the cross-layer stats monitor app."""

import pytest

from repro.core import TyphoonCluster
from repro.core.apps import StatsMonitor
from repro.sim import Engine
from repro.streaming import TopologyConfig
from repro.workloads import word_count_topology


def start(poll=3.0, rate=1000):
    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=2, seed=0)
    config = TopologyConfig(batch_size=50, max_spout_rate=rate)
    cluster.submit(word_count_topology("wc", config, splits=2, counts=2,
                                       words_per_sentence=2))
    monitor = cluster.register_app(StatsMonitor(cluster, "wc",
                                                poll_interval=poll))
    engine.run(until=15.0)
    return engine, cluster, monitor


def test_collects_network_layer_edge_stats():
    engine, cluster, monitor = start()
    assert monitor.polls >= 2
    record = cluster.manager.topologies["wc"]
    source_id = record.physical.worker_ids_for("source")[0]
    edges = monitor.edges_from(source_id)
    assert edges, "source has outgoing edge stats"
    assert all(e.packets > 0 and e.bytes > 0 for e in edges)
    split_ids = set(record.physical.worker_ids_for("split"))
    assert {e.dst_worker for e in edges} <= split_ids


def test_collects_application_layer_worker_stats():
    engine, cluster, monitor = start()
    record = cluster.manager.topologies["wc"]
    for worker_id in record.physical.worker_ids_for("count"):
        view = monitor.worker(worker_id)
        assert view is not None
        assert view.app_stats.get("processed", 0) > 0
        assert view.rx_packets > 0  # network layer merged in


def test_busiest_edges_ranked_by_bytes():
    engine, cluster, monitor = start()
    busiest = monitor.busiest_edges(top=3)
    assert busiest
    volumes = [e.bytes for e in busiest]
    assert volumes == sorted(volumes, reverse=True)


def test_report_renders():
    engine, cluster, monitor = start()
    text = monitor.report()
    assert "cross-layer statistics" in text
    assert "-- workers --" in text
    assert "-- busiest edges --" in text
    assert "w1" in text


def test_stop_halts_polling():
    engine, cluster, monitor = start()
    polls = monitor.polls
    monitor.on_stop()
    engine.run(until=30.0)
    assert monitor.polls == polls

"""Hop-by-hop tracing: sampling, wire format, span trees, hook chain.

Covers the tracer's determinism contract (1-in-N sampling by counter,
bit-identical reports for a fixed seed), the trace-id wire extension of
the Fig. 5 tuple format, the full Fig. 8 forwarding hook chain (executor
-> serialize -> batch -> switch -> tunnel -> wire -> reassembly ->
deserialize -> queue -> execute), span-tree invariants (property-based
and on real traces), the zero-cost-when-disabled guarantee, control
tuple mirroring and trace terminations under injected faults.
"""

from __future__ import annotations

import math
import random
from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.rest import RestApi
from repro.core.tracing import run_forwarding_trace, trace_snapshot
from repro.net.addresses import BROADCAST, CONTROLLER_ADDRESS, WorkerAddress
from repro.sim import Engine
from repro.sim.metrics import MetricsRegistry
from repro.sim.trace import (
    H_BATCH,
    H_CONTROL,
    H_DESERIALIZE,
    H_DROP,
    H_EXECUTE,
    H_QUEUE,
    H_SERIALIZE,
    H_SWITCH,
    H_TUNNEL_RX,
    H_TUNNEL_TX,
    H_WIRE,
    KIND_CONTROL,
    KIND_DATA,
    Tracer,
    address_branch,
)
from repro.streaming.serialize import decode_tuple, encode_tuple, peek_trace_id
from repro.streaming.tuples import StreamTuple


def fresh_tuple(seq=0):
    return StreamTuple(("payload", seq))


# -- sampling ----------------------------------------------------------------


def test_sampling_is_one_in_n_by_counter():
    tracer = Tracer(Engine(), sample_every=3)
    ids = [tracer.maybe_trace(fresh_tuple(i)) for i in range(9)]
    assert ids == [None, None, 3, None, None, 6, None, None, 9]
    assert sorted(tracer.traces) == [3, 6, 9]


def test_disabled_tracer_is_inert():
    tracer = Tracer(Engine())          # sample_every defaults to 0
    assert not tracer.enabled
    for i in range(10):
        assert tracer.maybe_trace(fresh_tuple(i)) is None
    # The candidate counter is untouched, so later enabling starts fresh
    # and two runs that only differ in when tracing was switched on
    # still sample the same tuples.
    assert tracer._counter == 0
    assert not tracer.traces and tracer.span_events == 0
    tracer.event(17, H_WIRE)           # unknown ids are silently ignored
    assert tracer.span_events == 0


def test_already_sampled_tuple_keeps_its_id():
    tracer = Tracer(Engine(), sample_every=1)
    stream_tuple = fresh_tuple()
    first = tracer.maybe_trace(stream_tuple)
    assert first == stream_tuple.trace_id == 1
    assert tracer.maybe_trace(stream_tuple) == first
    assert len(tracer.traces) == 1


def test_configure_rejects_negative_rate():
    tracer = Tracer(Engine())
    with pytest.raises(ValueError):
        tracer.configure(-1)
    tracer.configure(5)
    assert tracer.enabled and tracer.sample_every == 5


def test_max_traces_overflow_guard():
    tracer = Tracer(Engine(), sample_every=1, max_traces=2)
    assert tracer.maybe_trace(fresh_tuple(0)) == 1
    assert tracer.maybe_trace(fresh_tuple(1)) == 2
    assert tracer.maybe_trace(fresh_tuple(2)) is None
    assert tracer.overflow_traces == 1
    assert len(tracer.traces) == 2


# -- wire format -------------------------------------------------------------


def test_trace_id_round_trips_on_the_wire():
    stream_tuple = StreamTuple(("a", 1), stream=0, source_worker=4)
    plain = encode_tuple(stream_tuple)
    stream_tuple.trace_id = 0xDEADBEEF
    traced = encode_tuple(stream_tuple)
    assert len(traced) == len(plain) + 8      # one trailing !Q field
    assert peek_trace_id(plain) is None
    assert peek_trace_id(traced) == 0xDEADBEEF
    decoded = decode_tuple(traced)
    assert decoded.trace_id == 0xDEADBEEF
    assert decoded.values == ("a", 1)
    assert decode_tuple(plain).trace_id is None


def test_peek_trace_id_tolerates_truncation():
    stream_tuple = fresh_tuple()
    stream_tuple.trace_id = 99
    data = encode_tuple(stream_tuple)
    for cut in range(0, min(len(data), 16)):
        assert peek_trace_id(data[:cut]) in (None, 99)
    assert peek_trace_id(b"") is None


# -- trace bookkeeping -------------------------------------------------------


def build_linear_trace(hops, finish_at, cost=0.5):
    """One sampled tuple checkpointed at the given (hop, t) points."""
    engine = Engine()
    metrics = MetricsRegistry(engine)
    tracer = Tracer(engine, metrics=metrics, sample_every=1)
    stream_tuple = fresh_tuple()
    trace_id = tracer.maybe_trace(stream_tuple)
    for hop, t in hops:
        engine.schedule(t, lambda h=hop, at=t: tracer.event(
            trace_id, h, t=at))
    engine.schedule(finish_at, lambda: tracer.finish_delivery(
        trace_id, branch=5, cost=cost))
    engine.run()
    return tracer, metrics, tracer.traces[trace_id]


def test_finish_delivery_records_exact_segment_sum():
    hops = [(H_SERIALIZE, 1.0), (H_SWITCH, 1.5), (H_WIRE, 2.25)]
    tracer, metrics, trace = build_linear_trace(hops, finish_at=3.0)
    e2e = trace.delivered_branches[5]
    walls = [wall for _hop, wall, _cost, _event in trace.segments(5)]
    assert e2e == math.fsum(walls)
    assert trace.events[-1].t == 3.5            # terminal sits at now+cost
    assert metrics.distribution("trace.e2e").samples() == [e2e]
    assert metrics.distribution("trace.e2e.data").samples() == [e2e]
    assert trace.finished and not trace.open


def test_finish_drop_marks_trace_finished():
    engine = Engine()
    tracer = Tracer(engine, sample_every=1)
    trace_id = tracer.maybe_trace(fresh_tuple())
    tracer.finish_drop(trace_id, "channel", "link-loss", branch=3)
    trace = tracer.traces[trace_id]
    assert trace.drops == [("channel", "link-loss")]
    assert trace.finished
    report = tracer.report()
    assert report.dropped == 1 and report.delivered == 0
    assert report.drop_reasons == {("channel", "link-loss"): 1}


def test_branch_timeline_truncates_at_terminal_hop():
    engine = Engine()
    tracer = Tracer(engine, sample_every=1)
    trace_id = tracer.maybe_trace(fresh_tuple())
    tracer.event(trace_id, H_SWITCH, t=1.0)                   # trunk
    tracer.event(trace_id, H_EXECUTE, t=2.0, branch=1)        # branch 1 done
    tracer.event(trace_id, H_TUNNEL_TX, t=3.0)                # trunk, copy 2
    tracer.event(trace_id, H_EXECUTE, t=4.0, branch=2)
    one = [e.hop for e in tracer.traces[trace_id].branch_events(1)]
    two = [e.hop for e in tracer.traces[trace_id].branch_events(2)]
    assert one == ["emit", H_SWITCH, H_EXECUTE]               # no tunnel-tx
    assert two == ["emit", H_SWITCH, H_TUNNEL_TX, H_EXECUTE]
    walls_one = math.fsum(w for _h, w, _c, _e in
                          tracer.traces[trace_id].segments(1))
    assert walls_one == 2.0


def test_address_branch_classification():
    assert address_branch(WorkerAddress(7, 42)) == 42
    assert address_branch(BROADCAST) is None
    assert address_branch(CONTROLLER_ADDRESS) is None
    assert address_branch(WorkerAddress(7, 0xE0000001)) is None   # virtual
    assert address_branch(None) is None


# -- span-tree invariants (property-based) -----------------------------------

MIDDLE_HOPS = [H_SERIALIZE, H_BATCH, H_SWITCH, H_TUNNEL_TX, H_TUNNEL_RX,
               H_WIRE, H_DESERIALIZE, H_QUEUE]


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(MIDDLE_HOPS),
                          st.floats(min_value=0.0, max_value=5.0),
                          st.sampled_from([None, 1, 2])),
                max_size=25),
       st.lists(st.sampled_from([1, 2]), max_size=2, unique=True))
def test_span_tree_invariants(steps, finish_branches):
    engine = Engine()
    tracer = Tracer(engine, sample_every=1)
    trace_id = tracer.maybe_trace(fresh_tuple())
    now = 0.0
    for hop, delta, branch in steps:
        now += delta
        tracer.event(trace_id, hop, t=now, branch=branch)
    for branch in finish_branches:
        now += 1.0
        tracer.event(trace_id, H_EXECUTE, t=now, branch=branch)
    spans = tracer.traces[trace_id].spans()
    by_id = {span.span_id: span for span in spans}
    roots = [span for span in spans if span.parent_id is None]
    assert len(roots) == 1
    for span in spans:
        # Every span is a well-formed interval ...
        assert span.start <= span.end
        if span.parent_id is None:
            continue
        # ... contained in its parent's interval, under an earlier id.
        parent = by_id[span.parent_id]
        assert span.parent_id < span.span_id
        assert parent.start <= span.start
        assert span.end <= parent.end


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(MIDDLE_HOPS),
                          st.floats(min_value=0.0, max_value=5.0)),
                max_size=25))
def test_branch_segments_telescope(steps):
    """Per-branch e2e is the fsum of that branch's segment walls."""
    engine = Engine()
    metrics = MetricsRegistry(engine)
    tracer = Tracer(engine, metrics=metrics, sample_every=1)
    trace_id = tracer.maybe_trace(fresh_tuple())
    now = 0.0
    for hop, delta in steps:
        now += delta
        tracer.event(trace_id, hop, t=now)
    tracer.event(trace_id, H_EXECUTE, t=now, branch=1)
    trace = tracer.traces[trace_id]
    # Hand-mark the delivery the way finish_delivery does.
    e2e = math.fsum(w for _h, w, _c, _e in trace.segments(1))
    trace.delivered_branches[1] = e2e
    report = tracer.report()
    assert report.e2e_values() == [e2e]
    assert report.e2e_sum == e2e


# -- the Fig. 8 forwarding hook chain ---------------------------------------

RUN_ARGS = dict(seed=0, sample_every=7, rate=50_000.0, duration=0.3,
                hosts=2)

#: Checkpoints a forwarded tuple crosses, in causal order.
CROSS_HOST_PATH = ["emit", H_SERIALIZE, H_BATCH, H_SWITCH, H_TUNNEL_TX,
                   H_TUNNEL_RX, H_SWITCH, H_WIRE, H_DESERIALIZE, H_QUEUE,
                   H_EXECUTE]
SAME_HOST_PATH = ["emit", H_SERIALIZE, H_BATCH, H_SWITCH, H_WIRE,
                  H_DESERIALIZE, H_QUEUE, H_EXECUTE]


@pytest.fixture(scope="module")
def traced_run():
    return run_forwarding_trace(**RUN_ARGS)


def test_forwarding_run_samples_and_terminates(traced_run):
    report, tracer, _cluster = traced_run
    assert report.sampled > 100
    assert report.open == 0                 # quiesced: nothing in flight
    assert report.dropped == 0
    assert report.delivered == report.sampled
    assert tracer.overflow_traces == 0


def test_every_trace_walks_the_forwarding_path(traced_run):
    _report, tracer, cluster = traced_run
    assignments = cluster.record("fwd").physical.assignments
    for trace in tracer.traces.values():
        if trace.kind != KIND_DATA:
            continue
        src_host = assignments[trace.meta["worker"]].hostname
        for branch in trace.delivered_branches:
            dst_host = assignments[branch].hostname
            hops = [e.hop for e in trace.branch_events(branch)]
            expected = (SAME_HOST_PATH if src_host == dst_host
                        else CROSS_HOST_PATH)
            assert hops == expected


def test_switch_hops_match_installed_route(traced_run):
    """The dpid sequence of a trace's switch-match checkpoints is the
    route the controller installed: the emitter's host switch, then
    (cross-host only) the receiver's host switch."""
    _report, tracer, cluster = traced_run
    assignments = cluster.record("fwd").physical.assignments
    dpid_of = {hostname: cluster.fabric.host(hostname).switch.dpid
               for hostname in cluster.fabric.hosts}
    for trace in tracer.traces.values():
        if trace.kind != KIND_DATA:
            continue
        src_host = assignments[trace.meta["worker"]].hostname
        for branch in trace.delivered_branches:
            dst_host = assignments[branch].hostname
            dpids = [e.meta["dpid"] for e in trace.branch_events(branch)
                     if e.hop == H_SWITCH]
            expected = [dpid_of[src_host]]
            if dst_host != src_host:
                expected.append(dpid_of[dst_host])
            assert dpids == expected


def test_hop_sum_identity_is_exact(traced_run):
    """Acceptance criterion: per-hop breakdown sums equal the e2e
    latency the metrics registry recorded — exactly, not approximately."""
    report, tracer, cluster = traced_run
    dist = cluster.metrics.distribution("trace.e2e")
    # Per tuple: re-summing a branch's hop segments reproduces the
    # recorded latency bit-for-bit.
    for trace in tracer.traces.values():
        for branch, e2e in trace.delivered_branches.items():
            walls = [w for _h, w, _c, _e in trace.segments(branch)]
            assert math.fsum(walls) == e2e
    # Aggregate: same sample multiset, same fsum totals.
    assert sorted(report.e2e_values()) == sorted(dist.samples())
    assert report.e2e_sum == dist.total()
    assert len(dist) == report.delivered


def test_span_invariants_hold_on_real_traces(traced_run):
    _report, tracer, _cluster = traced_run
    spans = tracer.spans()
    assert spans
    by_id = {}
    for span in spans:
        assert span.start <= span.end
        if span.parent_id is None:
            by_id = {span.span_id: span}      # new trace root
            continue
        parent = by_id[span.parent_id]
        assert parent.start <= span.start and span.end <= parent.end
        by_id[span.span_id] = span


def test_rest_trace_endpoint(traced_run):
    report, _tracer, cluster = traced_run
    status, body = RestApi(cluster).handle("GET", "/trace")
    assert status == 200
    assert body["enabled"] is True
    assert body["sampled"] == report.sampled
    assert body["hops"] and body["critical_path"]
    assert body == trace_snapshot(cluster)


def test_report_is_byte_identical_for_fixed_seed(traced_run):
    report, _tracer, _cluster = traced_run
    again, _tracer2, _cluster2 = run_forwarding_trace(**RUN_ARGS)
    assert again.render() == report.render()
    assert again.to_dict() == report.to_dict()


# -- zero cost when disabled -------------------------------------------------


def test_disabled_tracing_runs_no_hook_code(monkeypatch):
    """With sampling off, no layer may reach *any* recording method:
    every hook site is guarded, so a disabled tracer costs an attribute
    read, not a call."""
    def boom(*_args, **_kwargs):
        raise AssertionError("tracer hook fired while disabled")

    for name in ("maybe_trace", "event", "finish_delivery", "finish_drop",
                 "frame_ids", "frame_event", "frame_drop"):
        monkeypatch.setattr(Tracer, name, boom)
    report, tracer, _cluster = run_forwarding_trace(
        seed=0, sample_every=0, rate=20_000.0, duration=0.1, hosts=2)
    assert tracer.span_events == 0
    assert not tracer.traces
    assert report.sampled == 0


def test_disabled_tracing_leaves_wire_format_unchanged():
    stream_tuple = fresh_tuple()
    tracer = Tracer(Engine())              # disabled
    assert tracer.maybe_trace(stream_tuple) is None
    assert stream_tuple.trace_id is None
    assert peek_trace_id(encode_tuple(stream_tuple)) is None


# -- control tuples ----------------------------------------------------------


def test_control_tuples_are_traced(traced_with_faults):
    _cluster, tracer, _ledger_drops = traced_with_faults
    control = [t for t in tracer.traces.values() if t.kind == KIND_CONTROL]
    assert control
    for trace in control:
        terminal = [e for e in trace.events
                    if e.hop in (H_CONTROL, H_DROP)]
        assert terminal                     # applied (or died accounted)
    applied = [t for t in control if t.delivered_branches]
    assert applied
    for trace in applied:
        assert any(e.hop == H_CONTROL for e in trace.events)


# -- traces under injected faults (chaos satellite) --------------------------


@pytest.fixture(scope="module")
def traced_with_faults():
    """Forwarding run (acking off) with a seeded link-loss window;
    sampling 1:1 so every lost tuple carries a trace."""
    from repro.core.audit import quiesce
    from repro.core.runtime import TyphoonCluster
    from repro.sim.faults import set_link_loss
    from repro.streaming.topology import TopologyConfig
    from repro.workloads.wordcount import forwarding_topology

    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=2, seed=0)
    cluster.tracer.configure(1)
    config = TopologyConfig(batch_size=50, max_spout_rate=20_000.0,
                            acking=False)
    cluster.submit(forwarding_topology("fwd", config))
    engine.run(until=2.1)
    set_link_loss(cluster, "host-0", "host-1", 0.3, random.Random(7))
    engine.run(until=2.5)
    set_link_loss(cluster, "host-0", "host-1", 0.0)
    quiesce(cluster, settle=1.0)
    return cluster, cluster.tracer, dict(cluster.ledger.drops_by_reason())


def test_lost_tuples_terminate_with_ledger_reason(traced_with_faults):
    cluster, tracer, ledger_drops = traced_with_faults
    dropped = [t for t in tracer.traces.values() if t.drops]
    assert dropped, "link loss must kill some sampled tuples"
    traced_drops = Counter(reason for trace in dropped
                           for reason in trace.drops)
    # Every traced termination names a (layer, reason) the ledger also
    # charged, and never more of them than the ledger counted.
    for key, count in traced_drops.items():
        assert key in ledger_drops
        assert count <= ledger_drops[key]
    # Sampling is 1:1 and the only loss site is the tunnel, so the trace
    # and ledger agree exactly here.
    assert traced_drops[("channel", "link-loss")] == \
        ledger_drops[("channel", "link-loss")]
    for trace in dropped:
        assert trace.finished
        drop_event = next(e for e in trace.events if e.hop == H_DROP)
        assert (drop_event.meta["layer"],
                drop_event.meta["reason"]) in ledger_drops


def test_faulted_run_still_satisfies_hop_sum_identity(traced_with_faults):
    cluster, tracer, _ledger_drops = traced_with_faults
    report = tracer.report()
    dist = cluster.metrics.distribution("trace.e2e")
    assert report.open == 0
    assert sorted(report.e2e_values()) == sorted(dist.samples())
    assert report.e2e_sum == dist.total()
    assert report.delivered > 0 and report.dropped > 0

"""Unit tests for the Typhoon framework layer (control-tuple handling
inside a live worker)."""

import pytest

from repro.core import control as ct
from repro.core.framework_layer import handle_control_tuple
from repro.core.io_layer import TyphoonFabric, TyphoonTransport
from repro.net import Cluster
from repro.sim import DEFAULT_COSTS, Engine, MetricsRegistry
from repro.sim.rng import SeedFactory
from repro.streaming import (
    Grouping,
    LogicalNode,
    Router,
    SHUFFLE,
    TopologyConfig,
    WorkerAssignment,
    WorkerExecutor,
)
from repro.streaming.topology import BOLT, SDN_SELECT, SPOUT, Bolt, Spout


class Idle(Bolt):
    def execute(self, stream_tuple, collector):
        pass


class IdleSpout(Spout):
    def next_tuple(self, collector):
        pass


def make_worker(engine, kind=BOLT):
    fabric = TyphoonFabric(engine, DEFAULT_COSTS, Cluster.of_size(1))
    transport = TyphoonTransport(engine, DEFAULT_COSTS, worker_id=1,
                                 app_id=1, host_fabric=fabric.host("host-0"))
    factory = Idle if kind == BOLT else IdleSpout
    executor = WorkerExecutor(
        engine=engine, costs=DEFAULT_COSTS,
        assignment=WorkerAssignment(1, "c", 0, "host-0"),
        node=LogicalNode("c", kind, factory),
        config=TopologyConfig(),
        transport=transport,
        routers={("down", 0): Router(Grouping(SHUFFLE), [2, 3])},
        metrics=MetricsRegistry(engine),
        rng=SeedFactory(0).rng("w"),
        topology_id="t",
        control_handler=handle_control_tuple,
    )
    transport.deliver = executor.deliver
    transport.attach()
    return executor, transport


def control(executor, message):
    cost = handle_control_tuple(executor, message.to_stream_tuple())
    assert cost >= 0
    return cost


def test_routing_update_replaces_next_hops(engine):
    executor, _ = make_worker(engine)
    control(executor, ct.routing_update([
        ct.RoutingUpdate("down", 0, [7, 8, 9])]))
    router = executor.routers[("down", 0)]
    assert router.next_hops == [7, 8, 9]
    assert router.grouping.kind == SHUFFLE  # unchanged without a policy


def test_routing_update_changes_policy(engine):
    executor, _ = make_worker(engine)
    control(executor, ct.routing_update([
        ct.RoutingUpdate("down", 0, [7], "global")]))
    assert executor.routers[("down", 0)].grouping.kind == "global"


def test_routing_update_sdn_select_sets_virtual_address(engine):
    executor, transport = make_worker(engine)
    control(executor, ct.routing_update([
        ct.RoutingUpdate("down", 0, [2, 3], SDN_SELECT)]))
    assert ("down", 0) in transport.select_addresses
    address = transport.select_addresses[("down", 0)]
    assert address.worker_id >= 0xE0000000


def test_input_rate_and_reset(engine):
    executor, _ = make_worker(engine, kind=SPOUT)
    control(executor, ct.input_rate(1234.0))
    assert executor.input_rate_limit == 1234.0
    control(executor, ct.input_rate(None))
    assert executor.input_rate_limit is None


def test_activate_deactivate(engine):
    executor, _ = make_worker(engine, kind=SPOUT)
    control(executor, ct.deactivate())
    assert not executor.active
    control(executor, ct.activate())
    assert executor.active


def test_batch_size_updates_transport_and_emit_batch(engine):
    executor, transport = make_worker(engine)
    control(executor, ct.batch_size(42))
    assert transport.batch_size == 42
    assert executor._emit_batch == 42


def test_signal_invokes_on_signal(engine):
    calls = []

    class Stateful(Bolt):
        def execute(self, stream_tuple, collector):
            pass

        def on_signal(self, signal, collector):
            calls.append(signal.values)

    fabric = TyphoonFabric(engine, DEFAULT_COSTS, Cluster.of_size(1))
    transport = TyphoonTransport(engine, DEFAULT_COSTS, 1, 1,
                                 fabric.host("host-0"))
    executor = WorkerExecutor(
        engine=engine, costs=DEFAULT_COSTS,
        assignment=WorkerAssignment(1, "c", 0, "host-0"),
        node=LogicalNode("c", BOLT, Stateful), config=TopologyConfig(),
        transport=transport, routers={}, metrics=MetricsRegistry(engine),
        rng=SeedFactory(0).rng("w"), topology_id="t",
        control_handler=handle_control_tuple,
    )
    transport.deliver = executor.deliver
    transport.attach()
    handle_control_tuple(executor, ct.signal("flush").to_stream_tuple())
    assert calls == [("flush",)]


def test_metric_req_sends_response_frame(engine):
    executor, transport = make_worker(engine)
    frames_before = transport.frames_sent
    cost = control(executor, ct.metric_request(3))
    assert cost > 0
    assert transport.frames_sent == frames_before + 1


def test_metric_resp_is_ignored_gracefully(engine):
    executor, transport = make_worker(engine)
    frames_before = transport.frames_sent
    control(executor, ct.metric_response(1, 2, {"x": 1}))  # no exception
    assert transport.frames_sent == frames_before  # and no reply sent

"""Unit tests for the Kafka-like broker substrate."""

import pytest

from repro.ext import KafkaBroker, KafkaConsumer, KafkaProducer
from repro.sim import Engine


@pytest.fixture
def broker(engine):
    broker = KafkaBroker(engine, num_partitions=4)
    broker.create_topic("events")
    return broker


def test_topic_management(engine):
    broker = KafkaBroker(engine)
    broker.create_topic("a", partitions=2)
    assert broker.topics() == ["a"]
    assert broker.partitions_of("a") == 2
    with pytest.raises(ValueError):
        broker.create_topic("a")
    with pytest.raises(KeyError):
        broker.partitions_of("ghost")
    with pytest.raises(ValueError):
        broker.create_topic("bad", partitions=0)


def test_produce_assigns_offsets_per_partition(broker):
    records = [broker.produce("events", "v%d" % i, key="k") for i in range(5)]
    # Same key -> same partition, consecutive offsets.
    partitions = {r.partition for r in records}
    assert len(partitions) == 1
    assert [r.offset for r in records] == [0, 1, 2, 3, 4]


def test_keyless_produce_round_robins(broker):
    records = [broker.produce("events", i) for i in range(8)]
    assert {r.partition for r in records} == {0, 1, 2, 3}


def test_consumer_reads_everything_once(broker):
    for i in range(100):
        broker.produce("events", i, key=i)
    consumer = KafkaConsumer(broker, "events")
    seen = []
    while True:
        records = consumer.poll(max_records=17)
        if not records:
            break
        seen.extend(r.value for r in records)
    assert sorted(seen) == list(range(100))
    assert consumer.lag() == 0
    # Nothing is re-delivered.
    assert consumer.poll() == []


def test_consumer_group_partition_split(broker):
    for i in range(40):
        broker.produce("events", i, key=i)
    first = KafkaConsumer(broker, "events", member_index=0, group_size=2)
    second = KafkaConsumer(broker, "events", member_index=1, group_size=2)
    assert set(first.partitions) == {0, 2}
    assert set(second.partitions) == {1, 3}
    seen = []
    for consumer in (first, second):
        while True:
            records = consumer.poll(100)
            if not records:
                break
            seen.extend(r.value for r in records)
    assert sorted(seen) == list(range(40))


def test_consumer_group_bounds_checked(broker):
    with pytest.raises(ValueError):
        KafkaConsumer(broker, "events", member_index=2, group_size=2)
    with pytest.raises(ValueError):
        KafkaConsumer(broker, "events", group_size=0)


def test_lag_accounting(broker):
    consumer = KafkaConsumer(broker, "events")
    for i in range(10):
        broker.produce("events", i)
    assert consumer.lag() == 10
    consumer.poll(4)
    assert consumer.lag() == 6


def test_cost_billing(engine, broker):
    producer = KafkaProducer(broker)
    producer.send("events", "v")
    assert producer.drain_cost() > 0
    assert producer.drain_cost() == 0  # drained
    consumer = KafkaConsumer(broker, "events")
    consumer.poll()
    assert consumer.drain_cost() > 0


def test_record_timestamps_use_engine_clock(engine, broker):
    engine.schedule(5.0, lambda: broker.produce("events", "late"))
    engine.run()
    record = broker.fetch("events", broker._partition_for("events", None) or 0,
                          0, 10)
    # fetch from whichever partition got it
    found = []
    for p in range(broker.partitions_of("events")):
        found.extend(broker.fetch("events", p, 0, 10))
    assert found[0].timestamp == 5.0

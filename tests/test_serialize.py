"""Unit + property tests for the tuple codec."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import DEFAULT_COSTS
from repro.streaming import (
    Anchor,
    SerializationError,
    StreamTuple,
    decode_tuple,
    deserialize_cost,
    encode_tuple,
    encode_values,
    serialize_cost,
)
from repro.streaming.serialize import _decode_value, _encode_value


def roundtrip(stream_tuple):
    return decode_tuple(encode_tuple(stream_tuple))


def test_simple_roundtrip():
    original = StreamTuple(("hello", 42), stream=0, source_worker=7)
    decoded = roundtrip(original)
    assert decoded.values == ("hello", 42)
    assert decoded.stream == 0
    assert decoded.source_worker == 7
    assert decoded.anchor is None


def test_anchor_roundtrip():
    original = StreamTuple(("x",), anchor=Anchor(12345678901234567890 % 2**64,
                                                 987654321))
    decoded = roundtrip(original)
    assert decoded.anchor == original.anchor


def test_all_value_types():
    values = (None, True, False, 17, -3, 2.5, "text", b"raw",
              [1, "two", [3]], {"k": "v", "n": 1})
    decoded = roundtrip(StreamTuple(values))
    assert decoded.values[0] is None
    assert decoded.values[1] is True
    assert decoded.values[2] is False
    assert decoded.values[3:8] == (17, -3, 2.5, "text", b"raw")
    assert decoded.values[8] == [1, "two", [3]]
    assert decoded.values[9] == {"k": "v", "n": 1}


def test_unicode_strings():
    decoded = roundtrip(StreamTuple(("héllo wörld 東京",)))
    assert decoded.values == ("héllo wörld 東京",)


def test_unserializable_value_rejected():
    with pytest.raises(SerializationError):
        encode_values((object(),))


def test_truncated_data_rejected():
    data = encode_tuple(StreamTuple(("hello",)))
    with pytest.raises(SerializationError):
        decode_tuple(data[:-2])
    with pytest.raises(SerializationError):
        decode_tuple(data[:3])


def test_trailing_bytes_rejected():
    data = encode_tuple(StreamTuple(("hello",)))
    with pytest.raises(SerializationError):
        decode_tuple(data + b"junk")


def test_unknown_tag_rejected():
    with pytest.raises(SerializationError):
        _decode_value(b"\xee", 0)


def test_costs_scale_with_size():
    small = serialize_cost(DEFAULT_COSTS, 10)
    large = serialize_cost(DEFAULT_COSTS, 10_000)
    assert large > small
    assert deserialize_cost(DEFAULT_COSTS, 10) > 0


json_like = st.recursive(
    st.none() | st.booleans()
    | st.integers(min_value=-(2**80), max_value=2**80)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=40) | st.binary(max_size=40),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=12,
)


@settings(max_examples=150)
@given(st.lists(json_like, max_size=6), st.integers(0, 0xFFFF),
       st.integers(-1, 1000))
def test_roundtrip_property(values, stream, source_worker):
    original = StreamTuple(tuple(values), stream=stream,
                           source_worker=source_worker)
    decoded = roundtrip(original)
    assert list(decoded.values) == [
        list(v) if isinstance(v, tuple) else v for v in original.values
    ]
    assert decoded.stream == stream
    assert decoded.source_worker == source_worker


@settings(max_examples=80)
@given(st.lists(json_like, max_size=4))
def test_encoding_is_deterministic(values):
    first = encode_values(tuple(values))
    second = encode_values(tuple(values))
    assert first == second

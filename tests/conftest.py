"""Shared fixtures and helper components for the test suite."""

from __future__ import annotations

import pytest

from repro.sim import DEFAULT_COSTS, Engine
from repro.streaming import (
    Bolt,
    Spout,
    TopologyBuilder,
    TopologyConfig,
)


@pytest.fixture
def engine():
    return Engine()


class CountingSpout(Spout):
    """Emits (payload, seq) at max speed, optionally up to a limit."""

    def __init__(self, limit=None, payload="x"):
        self.limit = limit
        self.payload = payload
        self.seq = 0

    def next_tuple(self, collector):
        if self.limit is not None and self.seq >= self.limit:
            return
        collector.emit((self.payload, self.seq), message_id=self.seq)
        self.seq += 1


class RecordingBolt(Bolt):
    """Stores every received tuple's values."""

    instances = []

    def __init__(self):
        self.received = []
        RecordingBolt.instances.append(self)

    def execute(self, stream_tuple, collector):
        self.received.append(stream_tuple.values)


class ForwardingBolt(Bolt):
    """Re-emits everything it receives."""

    def execute(self, stream_tuple, collector):
        collector.emit(stream_tuple.values, anchor=stream_tuple)


def simple_chain(topology_id="chain", limit=None, config=None,
                 sink_parallelism=1):
    """source -> sink topology used across integration tests."""
    builder = TopologyBuilder(topology_id, config or TopologyConfig())
    builder.set_spout("source", lambda: CountingSpout(limit), 1)
    builder.set_bolt("sink", RecordingBolt,
                     sink_parallelism).shuffle_grouping("source")
    return builder.build()

"""Integration tests for dynamic component attach/detach (interactive
data mining, §1) on a running Typhoon pipeline."""

import pytest

from repro.core import ReconfigurationError, TyphoonCluster
from repro.sim import Engine
from repro.streaming import Grouping, TopologyConfig
from repro.streaming.topology import Bolt
from repro.workloads import word_count_topology
from tests.conftest import RecordingBolt


class WindowedQuery(Bolt):
    """A dynamically attached mining query: counts per-sentence lengths."""

    def __init__(self):
        self.lengths = {}

    def execute(self, stream_tuple, collector):
        words = len(stream_tuple[0].split())
        self.lengths[words] = self.lengths.get(words, 0) + 1


def start(rate=1000, seed=0):
    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=2, seed=seed)
    config = TopologyConfig(batch_size=50, max_spout_rate=rate)
    cluster.submit(word_count_topology("wc", config, splits=2, counts=2,
                                       words_per_sentence=3))
    engine.run(until=8.0)
    return engine, cluster


def test_attach_query_taps_live_stream():
    engine, cluster = start()
    request = cluster.attach_component(
        "wc", "query", WindowedQuery, subscribe_to="source",
        grouping=Grouping("shuffle"))
    engine.run(until=20.0)
    assert request.triggered and not request.failed
    query_workers = cluster.executors_for("wc", "query")
    assert len(query_workers) == 1
    assert query_workers[0].stats.processed > 0
    assert query_workers[0].component.lengths.get(3, 0) > 0
    # The original pipeline is untouched: splits still receive everything.
    source = cluster.executors_for("wc", "source")[0]
    assert ("split", 0) in source.routers
    assert ("query", 0) in source.routers


def test_attach_does_not_steal_tuples():
    engine, cluster = start()
    cluster.attach_component("wc", "query", WindowedQuery,
                             subscribe_to="source",
                             grouping=Grouping("shuffle"))
    engine.run(until=25.0)
    cluster.deactivate("wc")
    engine.run(until=30.0)
    source = cluster.executors_for("wc", "source")[0]
    splits = cluster.executors_for("wc", "split")
    # All emitted sentences still reached the split stage.
    assert sum(s.stats.processed for s in splits) == source.stats.emitted


def test_detach_stops_traffic_and_retires_workers():
    engine, cluster = start()
    cluster.attach_component("wc", "query", WindowedQuery,
                             subscribe_to="source",
                             grouping=Grouping("shuffle"))
    engine.run(until=20.0)
    executor = cluster.executors_for("wc", "query")[0]
    request = cluster.detach_component("wc", "query")
    engine.run(until=30.0)
    assert request.triggered and not request.failed
    assert not executor.alive
    record = cluster.manager.topologies["wc"]
    assert "query" not in record.logical.nodes
    assert all(e.dst != "query" for e in record.physical.edges)
    source = cluster.executors_for("wc", "source")[0]
    assert ("query", 0) not in source.routers
    # And the main pipeline is still flowing.
    split_rate = cluster.executors_for("wc", "split")[0] \
        .processed_meter.rate(25, 29)
    assert split_rate > 0


def test_attach_multiple_parallel_workers():
    engine, cluster = start()
    request = cluster.attach_component(
        "wc", "query", WindowedQuery, subscribe_to="split",
        grouping=Grouping("fields", (0,)), parallelism=3, stateful=True)
    engine.run(until=20.0)
    assert request.triggered and not request.failed
    workers = cluster.executors_for("wc", "query")
    assert len(workers) == 3
    assert sum(w.stats.processed for w in workers) > 0


def test_attach_duplicate_name_rejected():
    engine, cluster = start()
    with pytest.raises(ReconfigurationError):
        cluster.attach_component("wc", "split", WindowedQuery,
                                 subscribe_to="source",
                                 grouping=Grouping("shuffle"))
    with pytest.raises(ReconfigurationError):
        cluster.attach_component("wc", "query", WindowedQuery,
                                 subscribe_to="ghost",
                                 grouping=Grouping("shuffle"))
    engine.run(until=15.0)
    # Topology untouched.
    assert len(cluster.executors_for("wc", "split")) == 2


def test_detach_with_downstream_rejected():
    engine, cluster = start()
    with pytest.raises(ReconfigurationError):
        cluster.detach_component("wc", "split")
    engine.run(until=15.0)
    # split has downstream (count): request refused, topology untouched.
    assert len(cluster.executors_for("wc", "split")) == 2
    assert len(cluster.executors_for("wc", "count")) == 2

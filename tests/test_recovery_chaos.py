"""Recovery-focused chaos scenarios: the acked reliability stack must
converge to zero permanently-lost roots under random faults, and
no-survivor dead ends must be observable instead of silent."""

import pytest

from repro.core import TyphoonCluster
from repro.core.apps.fault_detector import FaultDetector
from repro.core.chaos import (
    I_REPLAY,
    PASS,
    SKIP,
    InvariantChecker,
    chaos_snapshot,
    run_chaos,
)
from repro.sim import Engine
from repro.sim.faults import kill_worker_at
from repro.streaming import TopologyConfig
from repro.workloads.chaosflow import DEDUP_SERVICE, DedupRegistry, chaos_topology

#: Checkpoint cadence the acked scenarios run with. A fixture owns the
#: config construction (and the cluster teardown) so no test mutates a
#: shared TopologyConfig and leaks a different interval into the next.
CHECKPOINT_INTERVAL = 0.5


@pytest.fixture
def acked_config():
    return TopologyConfig(
        batch_size=50, max_spout_rate=500.0,
        acking=True, num_ackers=1, tuple_timeout=2.0, max_pending=48,
        replay_enabled=True, checkpoint_interval=CHECKPOINT_INTERVAL,
        reliable_control=True)


@pytest.fixture
def typhoon_cluster():
    """Factory for a TyphoonCluster that tears its topologies down
    afterwards, so checkpoint stores, replay buffers and replica groups
    never outlive the test that created them."""
    created = []

    def build(num_hosts=2, seed=0, detector=False, registry=None):
        engine = Engine()
        cluster = TyphoonCluster(engine, num_hosts=num_hosts, seed=seed)
        app = cluster.register_app(FaultDetector(cluster)) if detector \
            else None
        if registry is not None:
            cluster.services[DEDUP_SERVICE] = registry
        created.append(cluster)
        return engine, cluster, app

    yield build
    for cluster in created:
        for topology_id in list(cluster.manager.topologies):
            cluster.kill_topology(topology_id)


@pytest.mark.parametrize("system", ["typhoon", "storm"])
def test_acked_chaos_converges_to_zero_lost_roots(system):
    result = run_chaos(system, seed=0, acked=True)
    assert result.acked
    assert result.ok, result.render()
    replay = result.invariants.result(I_REPLAY)
    assert replay.status == PASS
    assert "exhausted=0" in replay.detail and "in-flight=0" in replay.detail
    # At-least-once, not at-least-zero: the faults really did force
    # replays, and the idempotent sink still applied each root once.
    assert "replays=" in replay.detail and "replays=0" not in replay.detail
    duplicates = result.invariants.result("no-duplicate-delivery")
    assert duplicates.status == PASS and "duplicates=0" in duplicates.detail
    assert "acked=True" in result.render().splitlines()[0]


def test_acked_chaos_is_deterministic():
    first = run_chaos("typhoon", seed=0, acked=True)
    second = run_chaos("typhoon", seed=0, acked=True)
    assert first.render() == second.render()
    assert first.to_dict() == second.to_dict()


def test_replay_invariant_skips_without_buffers(typhoon_cluster):
    """Best-effort runs (and pre-replay clusters) report SKIP, keeping
    same-seed reports comparable across regimes."""
    engine, cluster, _ = typhoon_cluster(num_hosts=1, seed=0)
    cluster.submit(chaos_topology("chaos", TopologyConfig(batch_size=50,
                                                          max_spout_rate=200)))
    engine.run(until=3.0)
    checker = InvariantChecker(cluster, settle=1.0)
    assert checker._check_replay().status == SKIP


def test_dead_end_is_counted_and_surfaced(typhoon_cluster):
    """Killing the only worker of a component leaves the fault detector
    nothing to redirect to; the condition must be observable in both the
    detector and the chaos snapshot instead of silently returning."""
    engine, cluster, detector = typhoon_cluster(
        num_hosts=1, seed=2, detector=True, registry=DedupRegistry())
    config = TopologyConfig(batch_size=50, max_spout_rate=500.0)
    physical = cluster.submit(chaos_topology("chaos", config,
                                             relays=1, sinks=1))
    [relay_id] = physical.worker_ids_for("relay")
    kill_worker_at(cluster, relay_id, when=3.0, reason="no-survivor test")
    engine.run(until=8.0)
    assert detector.dead_ends == 1
    [event] = detector.dead_end_events
    assert event["worker_id"] == relay_id
    assert event["component"] == "relay"
    assert event["topology"] == "chaos"
    assert event["time"] == pytest.approx(3.0, abs=0.1)
    snapshot = chaos_snapshot(cluster)
    assert snapshot["fault_detector"]["dead_ends"] == 1
    assert snapshot["fault_detector"]["dead_end_events"] == [event]


def test_acked_snapshot_exposes_reliability_state(typhoon_cluster,
                                                  acked_config):
    """GET /chaos payload: an acked cluster surfaces replay totals,
    checkpoint counters, acker ledger health and control-channel stats."""
    engine, cluster, _ = typhoon_cluster(
        num_hosts=2, seed=4, detector=True,
        registry=DedupRegistry(at_least_once=True))
    cluster.submit(chaos_topology("chaos", acked_config))
    engine.run(until=6.0)
    snapshot = chaos_snapshot(cluster)
    assert snapshot["replay"]["registered"] > 0
    assert snapshot["checkpoints"]["saves"] > 0
    assert snapshot["duplicates"]["at_least_once"] is True
    assert any(stats["completed"] > 0
               for stats in snapshot["ackers"].values())
    assert snapshot["control_channel"]["sent"] > 0
    assert snapshot["control_channel"]["reliable_topologies"] == 1

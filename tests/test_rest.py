"""Tests for the REST API (§5's user-facing framework services)."""

import pytest

from repro.core import TyphoonCluster
from repro.core.apps import LiveDebugger
from repro.core.rest import RestApi
from repro.sim import Engine
from repro.streaming import TopologyConfig
from repro.workloads import SplitBolt, word_count_topology


def start():
    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=2, seed=0)
    debugger = cluster.register_app(LiveDebugger(cluster))
    api = RestApi(cluster)
    api.attach_debugger(debugger)
    config = TopologyConfig(batch_size=50, max_spout_rate=1000)
    cluster.submit(word_count_topology("wc", config, splits=2, counts=2,
                                       words_per_sentence=2))
    engine.run(until=6.0)
    return engine, cluster, api


def test_list_and_get_topology():
    engine, cluster, api = start()
    status, payload = api.handle("GET", "/topologies")
    assert status == 200
    assert payload["topologies"] == ["wc"]
    status, payload = api.handle("GET", "/topologies/wc")
    assert status == 200
    assert payload["components"]["split"]["parallelism"] == 2
    assert payload["components"]["count"]["stateful"]
    alive = [w for w in payload["workers"] if w["alive"]]
    assert len(alive) == len(payload["workers"])


def test_unknown_routes_and_topologies():
    engine, cluster, api = start()
    assert api.handle("GET", "/nope")[0] == 404
    assert api.handle("GET", "/topologies/ghost")[0] == 404
    assert api.handle("PUT", "/topologies")[0] == 404


def test_parallelism_via_rest():
    engine, cluster, api = start()
    status, payload = api.handle(
        "POST", "/topologies/wc/components/split/parallelism",
        {"value": 3})
    assert status == 202
    engine.run(until=20.0)
    assert len(cluster.executors_for("wc", "split")) == 3


def test_parallelism_validation_errors():
    engine, cluster, api = start()
    status, payload = api.handle(
        "POST", "/topologies/wc/components/split/parallelism", {"value": 0})
    assert status == 409
    status, _ = api.handle(
        "POST", "/topologies/wc/components/ghost/parallelism", {"value": 2})
    assert status == 409
    status, _ = api.handle(
        "POST", "/topologies/wc/components/split/parallelism", {})
    assert status == 404 or status == 400


def test_logic_replacement_via_registered_factory():
    engine, cluster, api = start()

    class LoudSplit(SplitBolt):
        pass

    status, _ = api.handle("POST", "/topologies/wc/components/split/logic",
                           {"factory": "loud"})
    assert status == 400  # not registered yet
    api.register_factory("loud", LoudSplit)
    status, payload = api.handle(
        "POST", "/topologies/wc/components/split/logic", {"factory": "loud"})
    assert status == 202
    engine.run(until=25.0)
    splits = cluster.executors_for("wc", "split")
    assert all(isinstance(s.component, LoudSplit) for s in splits)


def test_activate_deactivate_and_rate():
    engine, cluster, api = start()
    assert api.handle("POST", "/topologies/wc/deactivate")[0] == 202
    engine.run(until=8.0)
    source = cluster.executors_for("wc", "source")[0]
    assert not source.active
    assert api.handle("POST", "/topologies/wc/activate")[0] == 202
    assert api.handle("POST", "/topologies/wc/input-rate",
                      {"rate": 500})[0] == 202
    engine.run(until=10.0)
    assert source.active
    assert source.input_rate_limit == 500
    status, _ = api.handle("POST", "/topologies/wc/input-rate", {})
    assert status == 400


def test_grouping_change_via_rest():
    engine, cluster, api = start()
    status, payload = api.handle(
        "POST", "/topologies/wc/components/split/grouping",
        {"src": "source", "kind": "shuffle"})
    assert status == 202
    engine.run(until=12.0)
    source = cluster.executors_for("wc", "source")[0]
    assert source.routers[("split", 0)].grouping.kind == "shuffle"


def test_debug_tap_lifecycle_via_rest():
    engine, cluster, api = start()
    status, _ = api.handle("POST",
                           "/topologies/wc/components/source/debug")
    assert status == 202
    engine.run(until=15.0)
    status, payload = api.handle("GET",
                                 "/topologies/wc/components/source/debug")
    assert status == 200
    assert payload["seen"] > 0
    status, _ = api.handle("DELETE",
                           "/topologies/wc/components/source/debug")
    assert status == 200
    engine.run(until=17.0)
    status, _ = api.handle("GET",
                           "/topologies/wc/components/source/debug")
    assert status == 404


def test_batch_size_via_rest():
    engine, cluster, api = start()
    assert api.handle("POST", "/topologies/wc/batch-size",
                      {"size": 25})[0] == 202
    engine.run(until=8.0)
    source = cluster.executors_for("wc", "source")[0]
    assert cluster.transports[source.worker_id].batch_size == 25
    assert api.handle("POST", "/topologies/wc/batch-size",
                      {"size": 0})[0] == 400


def test_cluster_summary():
    engine, cluster, api = start()
    status, payload = api.handle("GET", "/cluster")
    assert status == 200
    assert payload["topologies"] == ["wc"]
    assert len(payload["switches"]) == 2
    assert "typhoon-core" in payload["controller"]["apps"]
    assert api.requests_served >= 1


# -- network slices + bandwidth allocation routes -------------------------


def start_sliced():
    from repro.sdn import SoftwareSwitch
    from repro.sdn.hypervisor import NetworkHypervisor
    from repro.sim import DEFAULT_COSTS

    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=1, seed=0)
    api = RestApi(cluster)
    hypervisor = NetworkHypervisor(engine, DEFAULT_COSTS)
    switch = SoftwareSwitch(engine, DEFAULT_COSTS, dpid="sw0")
    hypervisor.connect_switch(switch)
    hypervisor.create_slice("tenant-a", {1}, bandwidth_quota=100_000.0)
    hypervisor.create_slice("tenant-b", {2})
    api.attach_hypervisor(hypervisor)
    return engine, api, switch


def test_list_slices():
    _engine, api, _switch = start_sliced()
    status, payload = api.handle("GET", "/slices")
    assert status == 200
    assert sorted(payload["slices"]) == ["tenant-a", "tenant-b"]
    tenant_a = payload["slices"]["tenant-a"]
    assert tenant_a["app_ids"] == [1]
    assert tenant_a["bandwidth_quota"] == 100_000.0
    assert tenant_a["committed_bandwidth"] == 0.0
    assert payload["slices"]["tenant-b"]["bandwidth_quota"] is None


def test_slice_flow_installation_and_violation():
    engine, api, switch = start_sliced()
    ok = {"dpid": "sw0",
          "match": {"in_port": 1, "dl_src": [1, 10], "dl_dst": [1, 11]},
          "actions": [{"type": "output", "port": 2}]}
    status, payload = api.handle("POST", "/slices/tenant-a/flows", ok)
    assert status == 202
    engine.run(until=0.01)
    assert len(switch.flows) == 1

    foreign = {"dpid": "sw0",
               "match": {"dl_src": [2, 10], "dl_dst": [1, 11]},
               "actions": [{"type": "output", "port": 2}]}
    status, payload = api.handle("POST", "/slices/tenant-a/flows", foreign)
    assert status == 403
    assert "foreign" in payload["error"]
    engine.run(until=0.02)
    assert len(switch.flows) == 1  # nothing new reached the switch

    rewrite = {"dpid": "sw0",
               "match": {"dl_src": [1, 10], "dl_dst": [1, 11]},
               "actions": [{"type": "set_dl_dst", "address": [2, 9]}]}
    assert api.handle("POST", "/slices/tenant-a/flows", rewrite)[0] == 403


def test_slice_flow_validation_errors():
    _engine, api, _switch = start_sliced()
    assert api.handle("POST", "/slices/nope/flows",
                      {"dpid": "sw0"})[0] == 404
    bad_action = {"dpid": "sw0",
                  "match": {"dl_src": [1, 10], "dl_dst": [1, 11]},
                  "actions": [{"type": "teleport"}]}
    status, payload = api.handle("POST", "/slices/tenant-a/flows",
                                 bad_action)
    assert status == 400
    assert "teleport" in payload["error"]


def test_slice_meter_quota_through_rest():
    _engine, api, _switch = start_sliced()
    status, payload = api.handle("POST", "/slices/tenant-a/meters", {
        "dpid": "sw0", "meter_id": 1, "rate_bytes_per_sec": 80_000.0})
    assert status == 202
    assert payload["committed_bandwidth"] == 80_000.0
    status, payload = api.handle("POST", "/slices/tenant-a/meters", {
        "dpid": "sw0", "meter_id": 2, "rate_bytes_per_sec": 30_000.0})
    assert status == 403
    assert "quota" in payload["error"]
    # The rejected commitment is not recorded.
    _status, payload = api.handle("GET", "/slices")
    assert payload["slices"]["tenant-a"]["committed_bandwidth"] == 80_000.0


def test_slice_routes_without_hypervisor():
    engine = Engine()
    api = RestApi(TyphoonCluster(engine, num_hosts=1, seed=0))
    assert api.handle("GET", "/slices")[0] == 400


def test_bandwidth_route():
    engine = Engine()
    api = RestApi(TyphoonCluster(engine, num_hosts=1, seed=0))
    assert api.handle("GET", "/bandwidth")[0] == 404
    engine = Engine()
    api = RestApi(TyphoonCluster(engine, num_hosts=1, seed=0,
                                 resource_aware=True))
    status, payload = api.handle("GET", "/bandwidth")
    assert status == 200
    assert payload["flows"] == [] and payload["meters_installed"] == 0

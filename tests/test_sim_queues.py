"""Unit tests for Store queues."""

import pytest

from repro.sim import BLOCK, DROP, Engine, Store


def test_put_get_roundtrip(engine):
    store = Store(engine)
    store.put("a")
    store.put("b")
    received = []

    def consumer():
        for _ in range(2):
            item = yield store.get()
            received.append(item)

    engine.process(consumer())
    engine.run()
    assert received == ["a", "b"]


def test_get_blocks_until_put(engine):
    store = Store(engine)
    received = []

    def consumer():
        item = yield store.get()
        received.append((engine.now, item))

    engine.process(consumer())
    engine.schedule(2.0, store.put, "late")
    engine.run()
    assert received == [(2.0, "late")]


def test_capacity_drop_policy(engine):
    store = Store(engine, capacity=2, overflow=DROP)
    assert store.put(1) is True
    assert store.put(2) is True
    assert store.put(3) is False
    assert store.drop_count == 1
    assert len(store) == 2


def test_capacity_block_policy(engine):
    store = Store(engine, capacity=1, overflow=BLOCK)
    assert store.put("first") is True
    gate = store.put("second")
    assert hasattr(gate, "add_callback")  # pending event
    delivered = []

    def producer():
        yield gate
        delivered.append("unblocked")

    def consumer():
        yield 1.0
        item = yield store.get()
        delivered.append(item)
        item = yield store.get()
        delivered.append(item)

    engine.process(producer())
    engine.process(consumer())
    engine.run()
    assert "unblocked" in delivered
    assert delivered.count("first") == 1
    assert delivered.count("second") == 1


def test_get_nowait(engine):
    store = Store(engine)
    ok, item = store.get_nowait()
    assert not ok and item is None
    store.put("x")
    ok, item = store.get_nowait()
    assert ok and item == "x"


def test_bytes_tracking_with_sizer(engine):
    store = Store(engine, sizer=len)
    store.put("abcd")
    store.put("ef")
    assert store.bytes_queued == 6
    ok, _item = store.get_nowait()
    assert ok
    assert store.bytes_queued == 2


def test_peak_depth(engine):
    store = Store(engine)
    for value in range(5):
        store.put(value)
    store.get_nowait()
    store.put(99)
    assert store.peak_depth == 5


def test_drain_returns_everything(engine):
    store = Store(engine)
    for value in range(4):
        store.put(value)
    items = store.drain()
    assert items == [0, 1, 2, 3]
    assert len(store) == 0


def test_cancel_waiters_fails_getters(engine):
    store = Store(engine)
    outcome = []

    def consumer():
        try:
            yield store.get()
        except RuntimeError:
            outcome.append("failed")

    engine.process(consumer())
    engine.schedule(1.0, store.cancel_waiters)
    engine.run()
    assert outcome == ["failed"]


def test_fifo_order_preserved_under_interleaving(engine):
    store = Store(engine)
    received = []

    def consumer():
        while True:
            item = yield store.get()
            received.append(item)
            if item == 9:
                return

    engine.process(consumer())
    for value in range(10):
        engine.schedule(0.1 * (value + 1), store.put, value)
    engine.run()
    assert received == list(range(10))


def test_invalid_configurations():
    engine = Engine()
    with pytest.raises(ValueError):
        Store(engine, capacity=0)
    with pytest.raises(ValueError):
        Store(engine, overflow="bounce")


def test_interrupted_getter_does_not_swallow_item(engine):
    """Regression: an interrupted consumer's queued get-gate used to stay
    armed in ``Store._getters``; the next put would succeed the stale
    gate, the waiter's staleness guard discarded the wake-up, and the
    item vanished. The defused gate must now be skipped so the item
    reaches the next live consumer."""
    from repro.sim import Interrupt

    store = Store(engine)
    received = []
    interrupted = []

    def victim():
        try:
            item = yield store.get()
            received.append(("victim", item))
        except Interrupt:
            interrupted.append(engine.now)

    def survivor():
        item = yield store.get()
        received.append(("survivor", item))

    victim_proc = engine.process(victim())
    engine.process(survivor())
    engine.schedule(1.0, victim_proc.interrupt, "killed")
    engine.schedule(2.0, store.put, "payload")
    engine.run()
    assert interrupted == [1.0]
    assert received == [("survivor", "payload")]


def test_interrupted_sole_getter_leaves_item_in_store(engine):
    """With no other consumer, the put after the interrupt must land in
    the store — not be consumed by the dead wait."""
    from repro.sim import Interrupt

    store = Store(engine)
    outcome = []

    def victim():
        try:
            yield store.get()
            outcome.append("got")
        except Interrupt:
            outcome.append("interrupted")

    victim_proc = engine.process(victim())
    engine.schedule(1.0, victim_proc.interrupt, "killed")
    engine.schedule(2.0, store.put, "payload")
    engine.run()
    assert outcome == ["interrupted"]
    assert len(store) == 1
    assert store.get_nowait() == (True, "payload")

"""Unit tests for the command-line interface."""

import io

import pytest

from repro.cli import EXPERIMENTS, build_parser, cmd_list_experiments, main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def test_list_experiments():
    code, text = run_cli(["list-experiments"])
    assert code == 0
    names = text.split()
    assert "fig9" in names
    assert "table5" in names
    assert names == sorted(names)
    assert set(names) == set(EXPERIMENTS)


def test_parser_rejects_unknown_experiment():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["experiment", "fig99"])


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_experiment_table5_renders():
    code, text = run_cli(["experiment", "table5"])
    assert code == 0
    assert "Table 5" in text
    assert "Dynamic provisioning" in text


def test_wordcount_typhoon_runs():
    code, text = run_cli(["wordcount", "--rate", "500", "--duration", "8",
                          "--hosts", "2", "--splits", "1", "--counts", "1"])
    assert code == 0
    assert "system: typhoon" in text
    assert "source" in text and "count" in text


def test_wordcount_storm_runs():
    code, text = run_cli(["wordcount", "--system", "storm", "--rate", "500",
                          "--duration", "8", "--hosts", "1",
                          "--splits", "1", "--counts", "1"])
    assert code == 0
    assert "system: storm" in text

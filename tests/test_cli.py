"""Unit tests for the command-line interface."""

import io

import pytest

from repro.cli import EXPERIMENTS, build_parser, cmd_list_experiments, main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def test_list_experiments():
    code, text = run_cli(["list-experiments"])
    assert code == 0
    names = text.split()
    assert "fig9" in names
    assert "table5" in names
    assert names == sorted(names)
    assert set(names) == set(EXPERIMENTS)


def test_parser_rejects_unknown_experiment():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["experiment", "fig99"])


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_experiment_table5_renders():
    code, text = run_cli(["experiment", "table5"])
    assert code == 0
    assert "Table 5" in text
    assert "Dynamic provisioning" in text


def test_wordcount_typhoon_runs():
    code, text = run_cli(["wordcount", "--rate", "500", "--duration", "8",
                          "--hosts", "2", "--splits", "1", "--counts", "1"])
    assert code == 0
    assert "system: typhoon" in text
    assert "source" in text and "count" in text


def test_wordcount_storm_runs():
    code, text = run_cli(["wordcount", "--system", "storm", "--rate", "500",
                          "--duration", "8", "--hosts", "1",
                          "--splits", "1", "--counts", "1"])
    assert code == 0
    assert "system: storm" in text


def test_bench_requires_perf_flag():
    code, text = run_cli(["bench"])
    assert code == 2
    assert "--perf" in text


def test_bench_perf_micro_runs_and_writes_json(tmp_path):
    report = tmp_path / "hotpath.json"
    code, text = run_cli(["bench", "--perf", "--no-e2e",
                          "--iterations", "2000",
                          "--output", str(report)])
    assert code == 0
    assert "table_lookup" in text
    assert "combined" in text
    import json
    data = json.loads(report.read_text())
    assert data["benchmark"] == "hotpath"
    assert set(data["ops"]) == {"table_lookup", "encode", "decode"}
    assert data["ops"]["table_lookup"]["cache_hit_rate"] > 0.95

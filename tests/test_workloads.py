"""Unit tests for workload generators and components."""

import random

import pytest

from repro.ext import KafkaBroker, RedisStore
from repro.sim import Engine
from repro.streaming import StreamTuple, signal_tuple
from repro.workloads import (
    AdEventGenerator,
    CAMPAIGN_KEY_PREFIX,
    CountBolt,
    EVENT_TYPES,
    EVENTS_TOPIC,
    FaultySplitBolt,
    InjectedFault,
    SplitBolt,
    Vocabulary,
    produce_events,
    broadcast_topology,
    forwarding_topology,
    word_count_topology,
)
from repro.streaming.topology import ComponentContext


class FakeCollector:
    def __init__(self):
        self.emitted = []
        self.charged = 0.0

    def emit(self, values, stream=0, anchor=None, message_id=None):
        self.emitted.append(tuple(values))

    def charge(self, seconds):
        self.charged += seconds


def ctx(task_index=0, services=None, rng=None):
    return ComponentContext(topology_id="t", component="c", worker_id=1,
                            task_index=task_index, parallelism=1,
                            rng=rng or random.Random(0),
                            services=services or {})


def test_vocabulary_uniform_sampling():
    vocabulary = Vocabulary(100)
    rng = random.Random(1)
    words = {vocabulary.sample(rng) for _ in range(500)}
    assert len(words) > 50
    sentence = vocabulary.sentence(rng, 5)
    assert len(sentence.split()) == 5


def test_vocabulary_zipf_skews_head():
    vocabulary = Vocabulary(100, skew=1.5)
    rng = random.Random(1)
    samples = [vocabulary.sample(rng) for _ in range(2000)]
    head_fraction = sum(1 for w in samples if w == "word0000") / len(samples)
    assert head_fraction > 0.2  # rank-1 word dominates


def test_vocabulary_validation():
    with pytest.raises(ValueError):
        Vocabulary(0)
    with pytest.raises(ValueError):
        Vocabulary(10, skew=-1)


def test_split_bolt_emits_word_pairs():
    bolt = SplitBolt(work_cost=1e-4)
    collector = FakeCollector()
    bolt.execute(StreamTuple(("the quick fox",)), collector)
    assert collector.emitted == [("the", 1), ("quick", 1), ("fox", 1)]
    assert collector.charged == pytest.approx(1e-4)


def test_faulty_split_throws_after_fault_time():
    now = [0.0]
    services = {"now": lambda: now[0]}
    bolt = FaultySplitBolt(fault_time=10.0, faulty_task_index=0)
    bolt.open(ctx(task_index=0, services=services))
    collector = FakeCollector()
    bolt.execute(StreamTuple(("ok",)), collector)  # before fault time
    now[0] = 11.0
    with pytest.raises(InjectedFault):
        bolt.execute(StreamTuple(("boom",)), collector)


def test_faulty_split_only_on_matching_task():
    services = {"now": lambda: 100.0}
    bolt = FaultySplitBolt(fault_time=10.0, faulty_task_index=0)
    bolt.open(ctx(task_index=1, services=services))
    bolt.execute(StreamTuple(("fine",)), FakeCollector())  # healthy task


def test_count_bolt_flush_on_signal():
    bolt = CountBolt()
    collector = FakeCollector()
    for word in ("a", "b", "a"):
        bolt.execute(StreamTuple((word, 1)), collector)
    assert bolt.counts == {"a": 2, "b": 1}
    bolt.on_signal(signal_tuple(), collector)
    assert not bolt.counts
    assert ("a", 2) in collector.emitted
    assert bolt.flushes == 1


def test_topology_builders_validate():
    assert forwarding_topology().total_workers() == 2
    assert broadcast_topology(sinks=4).total_workers() == 5
    with pytest.raises(ValueError):
        broadcast_topology(sinks=0)
    wc = word_count_topology(splits=3, counts=5)
    assert wc.node("split").parallelism == 3
    assert wc.node("count").stateful


def test_ad_event_generator_schema():
    generator = AdEventGenerator(random.Random(3), num_campaigns=5,
                                 ads_per_campaign=2)
    event = generator.make_event(now=12.5)
    assert len(event) == 7
    user, page, ad, ad_type, event_type, when, ip = event
    assert event_type in EVENT_TYPES
    assert when == 12.5
    assert ad in generator.ad_to_campaign
    assert ip.startswith("10.0.")


def test_ad_campaign_mapping_seeded_to_redis():
    generator = AdEventGenerator(random.Random(3), num_campaigns=3,
                                 ads_per_campaign=2)
    store = RedisStore()
    generator.seed_redis(store)
    for ad_id, campaign in generator.ad_to_campaign.items():
        assert store.get(CAMPAIGN_KEY_PREFIX + ad_id) == campaign
    assert len(generator.ads) == 6


def test_produce_events_rate(engine):
    broker = KafkaBroker(engine, num_partitions=2)
    broker.create_topic(EVENTS_TOPIC)
    generator = AdEventGenerator(random.Random(5))
    produce_events(engine, broker, EVENTS_TOPIC, generator, rate=1000,
                   until=4.0)
    engine.run(until=5.0)
    assert broker.records_produced == pytest.approx(4000, rel=0.05)


def test_produce_events_rejects_bad_rate(engine):
    broker = KafkaBroker(engine)
    broker.create_topic(EVENTS_TOPIC)
    generator = AdEventGenerator(random.Random(5))
    with pytest.raises(ValueError):
        produce_events(engine, broker, EVENTS_TOPIC, generator, rate=0)

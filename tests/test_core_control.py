"""Unit tests for control tuples (Table 2)."""

import pytest

from repro.core import control as ct
from repro.streaming import CONTROL_STREAM, SHUFFLE
from repro.streaming.topology import FIELDS


def test_all_table2_types_constructible():
    samples = [
        ct.routing_update([ct.RoutingUpdate("sink", 0, [1, 2])]),
        ct.signal(),
        ct.metric_request(1),
        ct.metric_response(1, 7, {"queue_depth": 3}),
        ct.input_rate(1000.0),
        ct.activate(),
        ct.deactivate(),
        ct.batch_size(250),
        ct.control_ack(3, 7),
    ]
    types = {sample.ctype for sample in samples}
    assert types == set(ct.CONTROL_TYPES)


def test_unknown_type_rejected():
    with pytest.raises(ValueError):
        ct.ControlTuple("REBOOT")


def test_stream_tuple_conversion():
    control = ct.signal("flush")
    stream_tuple = control.to_stream_tuple()
    assert stream_tuple.stream == CONTROL_STREAM
    assert stream_tuple.source_worker == ct.CONTROLLER_WORKER_ID
    back = ct.ControlTuple.from_stream_tuple(stream_tuple)
    assert back.ctype == ct.SIGNAL
    assert back.payload == {"kind": "flush"}


def test_from_stream_tuple_rejects_data_streams():
    from repro.streaming import StreamTuple
    with pytest.raises(ValueError):
        ct.ControlTuple.from_stream_tuple(StreamTuple(("x",), stream=0))


def test_wire_encoding_roundtrip():
    control = ct.routing_update([
        ct.RoutingUpdate("count", 0, [4, 5, 6], FIELDS, (0, 1)),
        ct.RoutingUpdate("debug", 2, [9]),
    ], request_id=17)
    decoded = ct.ControlTuple.decode(control.encode())
    assert decoded.ctype == ct.ROUTING
    assert decoded.request_id == 17
    updates = ct.parse_routing(decoded)
    assert updates[0].dst_component == "count"
    assert updates[0].next_hops == [4, 5, 6]
    assert updates[0].grouping_fields == (0, 1)
    assert updates[0].grouping().kind == FIELDS
    assert updates[1].grouping_kind is None
    assert updates[1].grouping() is None


def test_parse_routing_rejects_other_types():
    with pytest.raises(ValueError):
        ct.parse_routing(ct.signal())


def test_input_rate_none_means_unlimited():
    control = ct.input_rate(None)
    assert control.payload["rate"] == -1.0
    control = ct.input_rate(5000)
    assert control.payload["rate"] == 5000.0


def test_metric_response_payload():
    control = ct.metric_response(3, 42, {"emitted": 10, "queue_depth": 2})
    assert control.payload["worker_id"] == 42
    assert control.payload["stats"]["emitted"] == 10


def test_routing_update_wire_format_is_codec_friendly():
    update = ct.RoutingUpdate("sink", 1, [7, 8], SHUFFLE, ())
    wire = update.to_wire()
    back = ct.RoutingUpdate.from_wire(wire)
    assert back == update

"""Unit tests for the network substrate: addresses, frames, hosts, TCP."""

import pytest
from hypothesis import given, strategies as st

from repro.net import (
    BROADCAST,
    CONTROLLER_ADDRESS,
    TYPHOON_ETHERTYPE,
    ChannelClosed,
    Cluster,
    EthernetFrame,
    FrameError,
    Host,
    TcpChannel,
    TcpTunnel,
    WorkerAddress,
)
from repro.sim import DEFAULT_COSTS, Engine


# -- addresses ----------------------------------------------------------------


def test_address_pack_unpack_roundtrip():
    address = WorkerAddress(7, 123456)
    assert WorkerAddress.unpack(address.pack()) == address
    assert len(address.pack()) == 6


@given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFFFFFF))
def test_address_roundtrip_property(app_id, worker_id):
    address = WorkerAddress(app_id, worker_id)
    assert WorkerAddress.unpack(address.pack()) == address


def test_address_range_validation():
    with pytest.raises(ValueError):
        WorkerAddress(-1, 0)
    with pytest.raises(ValueError):
        WorkerAddress(0x10000, 0)
    with pytest.raises(ValueError):
        WorkerAddress(0, 2 ** 32)


def test_special_addresses():
    assert BROADCAST.is_broadcast
    assert not BROADCAST.is_controller
    assert CONTROLLER_ADDRESS.is_controller
    assert not CONTROLLER_ADDRESS.is_broadcast
    assert not WorkerAddress(1, 2).is_broadcast
    assert "broadcast" in str(BROADCAST)


# -- frames ------------------------------------------------------------------------


def test_frame_pack_unpack_roundtrip():
    frame = EthernetFrame(
        dst=WorkerAddress(1, 2), src=WorkerAddress(1, 3),
        ethertype=TYPHOON_ETHERTYPE, payload=b"hello world",
    )
    packed = frame.pack()
    assert len(packed) == 14 + 11
    unpacked = EthernetFrame.unpack(packed)
    assert unpacked == frame
    assert unpacked.is_typhoon


@given(st.binary(max_size=512))
def test_frame_payload_roundtrip_property(payload):
    frame = EthernetFrame(BROADCAST, WorkerAddress(9, 9), 0x0800, payload)
    assert EthernetFrame.unpack(frame.pack()).payload == payload


def test_frame_too_short_rejected():
    with pytest.raises(FrameError):
        EthernetFrame.unpack(b"short")


def test_frame_with_dst_rewrite():
    frame = EthernetFrame(WorkerAddress(1, 2), WorkerAddress(1, 3),
                          TYPHOON_ETHERTYPE, b"p")
    rewritten = frame.with_dst(WorkerAddress(1, 9))
    assert rewritten.dst == WorkerAddress(1, 9)
    assert rewritten.src == frame.src
    assert rewritten.payload == frame.payload
    assert frame.dst == WorkerAddress(1, 2)  # original untouched


# -- hosts --------------------------------------------------------------------------


def test_cluster_of_size():
    cluster = Cluster.of_size(3)
    assert len(cluster) == 3
    assert cluster.names == ["host-0", "host-1", "host-2"]
    assert cluster.get("host-1") == Host("host-1")


def test_cluster_duplicate_rejected():
    cluster = Cluster([Host("a")])
    with pytest.raises(ValueError):
        cluster.add(Host("a"))


def test_cluster_requires_hosts():
    with pytest.raises(ValueError):
        Cluster.of_size(0)


# -- tcp ----------------------------------------------------------------------------------


def test_channel_delivers_in_order_with_latency():
    engine = Engine()
    received = []
    channel = TcpChannel(engine, DEFAULT_COSTS, received.append, remote=True)
    channel.send(b"one")
    channel.send(b"two" * 100000)  # large message; same FIFO
    channel.send(b"three")
    engine.run()
    assert received[0] == b"one"
    assert received[2] == b"three"
    assert channel.messages_sent == 3


def test_channel_fifo_despite_size_variation():
    engine = Engine()
    received = []
    channel = TcpChannel(engine, DEFAULT_COSTS, received.append, remote=True)
    channel.send(b"x" * 1_000_000)  # slow transmission
    channel.send(b"y")              # would overtake without FIFO clamp
    engine.run()
    assert received == [b"x" * 1_000_000, b"y"]


def test_channel_local_faster_than_remote():
    engine = Engine()
    times = []
    local = TcpChannel(engine, DEFAULT_COSTS,
                       lambda d: times.append(("local", engine.now)),
                       remote=False)
    remote = TcpChannel(engine, DEFAULT_COSTS,
                        lambda d: times.append(("remote", engine.now)),
                        remote=True)
    local.send(b"a")
    remote.send(b"a")
    engine.run()
    delays = dict(times)
    assert delays["local"] < delays["remote"]


def test_closed_channel_rejects_and_drops():
    engine = Engine()
    received = []
    channel = TcpChannel(engine, DEFAULT_COSTS, received.append, remote=False)
    channel.send(b"in-flight")
    channel.close()
    with pytest.raises(ChannelClosed):
        channel.send(b"after-close")
    engine.run()
    assert received == []  # in-flight dropped on close


def test_tunnel_bidirectional():
    engine = Engine()
    at_a, at_b = [], []
    tunnel = TcpTunnel(engine, DEFAULT_COSTS, "hostA", "hostB",
                       deliver_to_a=at_a.append, deliver_to_b=at_b.append)
    tunnel.send_from("hostA", b"to-b")
    tunnel.send_from("hostB", b"to-a")
    engine.run()
    assert at_b == [b"to-b"]
    assert at_a == [b"to-a"]
    assert tunnel.total_bytes == 8


def test_tunnel_rejects_foreign_host():
    engine = Engine()
    tunnel = TcpTunnel(engine, DEFAULT_COSTS, "a", "b",
                       deliver_to_a=lambda d: None,
                       deliver_to_b=lambda d: None)
    with pytest.raises(ValueError):
        tunnel.send_from("c", b"data")


def test_tunnel_same_endpoints_rejected():
    engine = Engine()
    with pytest.raises(ValueError):
        TcpTunnel(engine, DEFAULT_COSTS, "a", "a",
                  deliver_to_a=lambda d: None, deliver_to_b=lambda d: None)

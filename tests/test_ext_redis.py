"""Unit tests for the Redis-like store substrate."""

import pytest

from repro.ext import RedisClient, RedisStore


@pytest.fixture
def store():
    return RedisStore()


def test_string_ops(store):
    assert store.get("k") is None
    store.set("k", "v")
    assert store.get("k") == "v"
    assert store.exists("k")
    assert store.delete("k")
    assert not store.exists("k")
    assert not store.delete("k")


def test_hash_ops(store):
    assert store.hget("h", "f") is None
    store.hset("h", "f", 10)
    assert store.hget("h", "f") == 10
    assert store.hincrby("h", "f", 5) == 15
    assert store.hincrby("h", "g") == 1
    assert store.hgetall("h") == {"f": 15, "g": 1}


def test_hgetall_returns_copy(store):
    store.hset("h", "f", 1)
    snapshot = store.hgetall("h")
    snapshot["f"] = 999
    assert store.hget("h", "f") == 1


def test_keys_with_prefix(store):
    store.set("window:a", 1)
    store.set("window:b", 2)
    store.hset("campaign:x", "f", 1)
    assert store.keys("window:") == ["window:a", "window:b"]
    assert len(store.keys()) == 3


def test_delete_covers_hashes(store):
    store.hset("h", "f", 1)
    assert store.delete("h")
    assert store.hgetall("h") == {}


def test_ops_counter(store):
    store.set("a", 1)
    store.get("a")
    store.hincrby("h", "f")
    assert store.ops == 3


def test_client_bills_costs(store):
    client = RedisClient(store)
    client.set("a", 1)
    client.get("a")
    cost = client.drain_cost()
    assert cost == pytest.approx(2 * client.op_cost)
    assert client.drain_cost() == 0


def test_clients_share_store_but_not_bills(store):
    first = RedisClient(store)
    second = RedisClient(store)
    first.set("k", "v")
    assert second.get("k") == "v"
    assert first.drain_cost() > 0
    assert second.drain_cost() > 0
    assert first.drain_cost() == 0

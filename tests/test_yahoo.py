"""Integration tests for the Yahoo ad-analytics pipeline (Fig. 13)."""

import pytest

from repro.core import TyphoonCluster
from repro.ext import KafkaBroker, RedisStore
from repro.sim import Engine
from repro.sim.rng import SeedFactory
from repro.streaming import StormCluster, TopologyConfig
from repro.workloads import (
    AdEventGenerator,
    EVENTS_TOPIC,
    make_filter_factory,
    produce_events,
    yahoo_topology,
)


def launch(cluster_class, engine, rate=2000, allowed=("view",), seed=11):
    cluster = cluster_class(engine, num_hosts=3)
    broker = KafkaBroker(engine, num_partitions=4)
    broker.create_topic(EVENTS_TOPIC)
    store = RedisStore()
    generator = AdEventGenerator(SeedFactory(seed).rng("ads"),
                                 num_campaigns=10, ads_per_campaign=3)
    generator.seed_redis(store)
    cluster.services["kafka"] = broker
    cluster.services["redis"] = store
    produce_events(engine, broker, EVENTS_TOPIC, generator, rate=rate)
    config = TopologyConfig(batch_size=50)
    cluster.submit(yahoo_topology("yahoo", config, allowed_events=allowed))
    return cluster, broker, store, generator


def test_pipeline_structure_matches_fig13():
    topology = yahoo_topology()
    parallelism = {name: node.parallelism
                   for name, node in topology.nodes.items()}
    assert parallelism == {"kafka-client": 1, "parse": 1, "filter": 3,
                           "projection": 3, "join": 3, "store": 1}
    assert topology.node("join").stateful
    assert topology.node("store").stateful
    joins = topology.incoming("join")[0]
    assert joins.grouping.kind == "fields"


def test_typhoon_end_to_end_counts_views_only():
    engine = Engine()
    cluster, broker, store, generator = launch(TyphoonCluster, engine)
    engine.run(until=45.0)
    stores = cluster.executors_for("yahoo", "store")
    aggregator = stores[0].component
    assert aggregator.emitted_windows > 0
    # All closed windows were persisted to Redis.
    window_keys = store.keys("window:")
    assert len(window_keys) >= aggregator.emitted_windows
    filters = cluster.executors_for("yahoo", "filter")
    passed = sum(f.component.passed for f in filters)
    dropped = sum(f.component.dropped for f in filters)
    # One of three event types admitted.
    assert passed / (passed + dropped) == pytest.approx(1 / 3, abs=0.05)


def test_join_cache_effectiveness():
    engine = Engine()
    cluster, broker, store, generator = launch(TyphoonCluster, engine)
    engine.run(until=30.0)
    joins = cluster.executors_for("yahoo", "join")
    hits = sum(j.component.cache_hits for j in joins)
    misses = sum(j.component.cache_misses for j in joins)
    assert misses <= len(generator.ads)  # each ad resolved at most once
    assert hits > misses
    assert sum(j.component.unjoined for j in joins) == 0


def test_key_routing_keeps_ad_on_one_join_worker():
    engine = Engine()
    cluster, _broker, _store, generator = launch(TyphoonCluster, engine)
    engine.run(until=30.0)
    joins = cluster.executors_for("yahoo", "join")
    seen = {}
    for executor in joins:
        for ad_id in executor.component.cache:
            assert ad_id not in seen, "ad resolved on two join workers"
            seen[ad_id] = executor.worker_id
    assert seen


def test_windowed_counts_sum_to_filtered_events():
    engine = Engine()
    cluster, broker, store, _generator = launch(TyphoonCluster, engine,
                                                rate=1000)
    engine.run(until=40.0)
    cluster.deactivate("yahoo")
    engine.run(until=45.0)
    aggregator = cluster.executors_for("yahoo", "store")[0].component
    total_windowed = (sum(aggregator.windows.values())
                      + sum(int(store.get(k)) for k in store.keys("window:")))
    filters = cluster.executors_for("yahoo", "filter")
    passed = sum(f.component.passed for f in filters)
    assert total_windowed == passed


def test_storm_baseline_runs_same_pipeline():
    engine = Engine()
    cluster, broker, store, _generator = launch(StormCluster, engine,
                                                rate=1000)
    engine.run(until=30.0)
    stores = cluster.executors_for("yahoo", "store")
    assert stores[0].stats.processed > 0
    assert stores[0].component.emitted_windows > 0


def test_filter_hot_swap_doubles_downstream_rate():
    engine = Engine()
    cluster, broker, store, _generator = launch(TyphoonCluster, engine,
                                                rate=2000)
    engine.run(until=40.0)
    cluster.replace_computation("yahoo", "filter",
                                make_filter_factory(("view", "click")))
    engine.run(until=80.0)
    record = cluster.manager.topologies["yahoo"]
    store_id = record.physical.worker_ids_for("store")[0]
    meter = cluster.metrics.meter("yahoo.store.%d.processed" % store_id)
    before = meter.rate(20, 38)
    after = meter.rate(55, 78)
    assert after / before == pytest.approx(2.0, rel=0.2)

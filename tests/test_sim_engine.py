"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import Engine, Interrupt, SimulationError
from repro.sim.engine import Event, Timer


def test_clock_starts_at_zero(engine):
    assert engine.now == 0.0


def test_schedule_runs_in_time_order(engine):
    order = []
    engine.schedule(2.0, order.append, "b")
    engine.schedule(1.0, order.append, "a")
    engine.schedule(3.0, order.append, "c")
    engine.run()
    assert order == ["a", "b", "c"]
    assert engine.now == 3.0


def test_same_time_events_fire_fifo(engine):
    order = []
    for tag in range(5):
        engine.schedule(1.0, order.append, tag)
    engine.run()
    assert order == [0, 1, 2, 3, 4]


def test_negative_delay_rejected(engine):
    with pytest.raises(ValueError):
        engine.schedule(-0.1, lambda: None)


def test_run_until_stops_clock_exactly(engine):
    engine.schedule(5.0, lambda: None)
    engine.run(until=2.5)
    assert engine.now == 2.5
    # The event is still pending and fires on the next run.
    fired = []
    engine.schedule(10.0, fired.append, "late")
    engine.run(until=6.0)
    assert engine.now == 6.0
    assert fired == []


def test_process_sleep_and_return_value(engine):
    def proc():
        yield 1.5
        yield 0.5
        return "done"

    process = engine.process(proc())
    engine.run()
    assert engine.now == 2.0
    assert process.value == "done"
    assert not process.alive


def test_process_waits_on_event(engine):
    gate = engine.event()
    seen = []

    def waiter():
        value = yield gate
        seen.append(value)

    engine.process(waiter())
    engine.schedule(3.0, gate.succeed, 42)
    engine.run()
    assert seen == [42]
    assert engine.now == 3.0


def test_process_waits_on_other_process(engine):
    def child():
        yield 2.0
        return "child-result"

    def parent():
        result = yield engine.process(child())
        return result

    parent_process = engine.process(parent())
    engine.run()
    assert parent_process.value == "child-result"


def test_event_double_trigger_rejected(engine):
    gate = engine.event()
    gate.succeed(1)
    with pytest.raises(SimulationError):
        gate.succeed(2)


def test_late_callback_fires_immediately(engine):
    gate = engine.event()
    gate.succeed("v")
    seen = []
    gate.add_callback(lambda ev: seen.append(ev.value))
    assert seen == ["v"]


def test_timer_cancel(engine):
    fired = []
    timer = Timer(engine, 1.0)
    timer.add_callback(lambda ev: fired.append(True))
    timer.cancel()
    engine.run()
    assert fired == []
    assert not timer.triggered


def test_interrupt_wakes_sleeping_process(engine):
    caught = []

    def sleeper():
        try:
            yield 100.0
        except Interrupt as interrupt:
            caught.append(interrupt.cause)

    process = engine.process(sleeper())
    engine.schedule(1.0, process.interrupt, "stop")
    engine.run()
    assert caught == ["stop"]
    assert engine.now == 1.0


def test_interrupt_finished_process_is_noop(engine):
    def quick():
        yield 0.1

    process = engine.process(quick())
    engine.run()
    process.interrupt("too late")
    engine.run()
    assert process.triggered


def test_uncaught_interrupt_ends_process_cleanly(engine):
    def sleeper():
        yield 100.0

    process = engine.process(sleeper())
    engine.schedule(1.0, process.interrupt, None)
    engine.run()
    assert process.triggered
    assert not process.failed


def test_failed_process_propagates_to_waiter(engine):
    def bad():
        yield 1.0
        raise ValueError("boom")

    def parent():
        try:
            yield engine.process(bad())
        except ValueError as error:
            return "caught:%s" % error

    parent_process = engine.process(parent())
    engine.run()
    assert parent_process.value == "caught:boom"


def test_all_of_collects_values(engine):
    gates = [engine.event() for _ in range(3)]
    done = engine.all_of(gates)
    for index, gate in enumerate(gates):
        engine.schedule(index + 1.0, gate.succeed, index * 10)
    engine.run()
    assert done.triggered
    assert done.value == [0, 10, 20]


def test_all_of_empty_fires_immediately(engine):
    done = engine.all_of([])
    assert done.triggered


def test_all_of_propagates_failure_to_waiter(engine):
    """A failed input must fail the gate — previously the exception was
    silently handed to the waiter as a plain result value."""
    gates = [engine.event() for _ in range(3)]
    caught = []

    def waiter():
        try:
            yield engine.all_of(gates)
        except RuntimeError as error:
            caught.append(str(error))

    engine.process(waiter())
    engine.schedule(1.0, gates[0].succeed, "ok")
    engine.schedule(2.0, gates[1].fail, RuntimeError("boom"))
    engine.run()
    assert caught == ["boom"]


def test_all_of_fails_on_already_failed_input(engine):
    failed = engine.event()
    failed.fail(RuntimeError("early"))
    gate = engine.all_of([failed, engine.event()])
    assert gate.triggered
    assert gate.failed
    assert str(gate.value) == "early"


def test_all_of_ignores_inputs_after_failure(engine):
    gates = [engine.event() for _ in range(3)]
    done = engine.all_of(gates)
    engine.schedule(1.0, gates[1].fail, RuntimeError("first"))
    engine.schedule(2.0, gates[0].succeed, "late-ok")
    engine.schedule(3.0, gates[2].fail, RuntimeError("second"))
    engine.run()
    assert done.failed
    assert str(done.value) == "first"


def test_any_of_failed_winner_fails_gate(engine):
    early, late = engine.event(), engine.event()
    caught = []

    def waiter():
        try:
            yield engine.any_of([early, late])
        except RuntimeError as error:
            caught.append(str(error))

    engine.process(waiter())
    engine.schedule(1.0, early.fail, RuntimeError("lost"))
    engine.schedule(5.0, late.succeed, "second")
    engine.run()
    assert caught == ["lost"]


def test_any_of_fires_on_first(engine):
    early, late = engine.event(), engine.event()
    winner = engine.any_of([early, late])
    engine.schedule(1.0, early.succeed, "first")
    engine.schedule(5.0, late.succeed, "second")
    engine.run()
    assert winner.value is early


def test_stop_engine_from_callback(engine):
    fired = []
    engine.schedule(1.0, fired.append, 1)
    engine.schedule(2.0, engine.stop)
    engine.schedule(3.0, fired.append, 3)
    engine.run()
    assert fired == [1]


def test_process_yields_bad_value_fails(engine):
    def bad():
        yield "not-a-waitable"

    process = engine.process(bad())
    with pytest.raises(SimulationError):
        engine.run()


def test_determinism_two_runs_identical():
    def workload(engine, log):
        def proc(tag):
            for step in range(3):
                yield 0.5 + step * 0.1
                log.append((engine.now, tag, step))

        for tag in ("a", "b", "c"):
            engine.process(proc(tag))
        engine.run()

    first, second = [], []
    workload(Engine(), first)
    workload(Engine(), second)
    assert first == second

"""SDN bandwidth allocation: policy, meters, and the closed loop (§5).

Three layers:

* pure policy (:mod:`repro.sdn.bandwidth`): guarantees are weighted
  shares, lending never starves a flow, a ramping flow reclaims its
  guarantee in one round, and the closed loop converges to a fixed
  point within a bounded number of rounds;
* the switch meter (:class:`~repro.sdn.switch.MeterState`): token
  bucket with burst credit and a bounded virtual queue;
* integration: two topologies scheduled across the same bottleneck
  link — the allocator installs one meter per flow, converges within
  bounded control rounds, polices the backlogged flow, and never
  starves the light one.
"""

from __future__ import annotations

import pytest

from repro.core.runtime import TyphoonCluster
from repro.net.hosts import Cluster, Host, HostCapacity
from repro.sdn.bandwidth import (
    HUNGRY_FRACTION,
    RECLAIM_FLOOR,
    SHRINK_FRACTION,
    fair_shares,
    reallocate,
    settled,
)
from repro.sdn.switch import MeterState
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.engine import Engine
from repro.streaming.topology import (
    Bolt,
    ResourceDemand,
    Spout,
    TopologyBuilder,
    TopologyConfig,
)


# -- fair_shares -----------------------------------------------------------


def test_fair_shares_are_weighted_and_exhaust_capacity():
    shares = fair_shares(100.0, {"a": 60.0, "b": 20.0})
    assert shares == {"a": 75.0, "b": 25.0}
    assert sum(shares.values()) == pytest.approx(100.0)


def test_fair_shares_zero_weight_defaults_to_one():
    shares = fair_shares(90.0, {"a": 0.0, "b": 0.0, "c": 1.0})
    assert shares == {"a": 30.0, "b": 30.0, "c": 30.0}
    assert all(value > 0 for value in shares.values())


def test_fair_shares_validates_inputs():
    assert fair_shares(10.0, {}) == {}
    with pytest.raises(ValueError):
        fair_shares(0.0, {"a": 1.0})


# -- reallocate ------------------------------------------------------------


CAP = 100_000.0
G = fair_shares(CAP, {"a": 60_000.0, "b": 20_000.0})  # 75k / 25k


def _loop(demand, guarantees=G, capacity=CAP, rounds=10, start=None):
    """Closed loop: each round observes min(demand, allocation)."""
    alloc = dict(start or guarantees)
    history = [dict(alloc)]
    for _round in range(rounds):
        observed = {name: min(demand[name], alloc[name]) for name in alloc}
        alloc = reallocate(alloc, observed, guarantees, capacity)
        history.append(dict(alloc))
    return history


def test_reallocate_lends_unused_capacity_to_hungry_flows():
    # a is backlogged, b uses a fraction of its guarantee.
    history = _loop({"a": 200_000.0, "b": 10_000.0})
    final = history[-1]
    assert final["a"] > G["a"]  # borrowed beyond its guarantee
    assert final["b"] >= G["b"] * RECLAIM_FLOOR
    assert final["b"] >= 10_000.0  # still fits b's actual demand
    assert sum(final.values()) <= CAP + 1e-6


def test_reallocate_converges_within_bounded_rounds():
    history = _loop({"a": 200_000.0, "b": 10_000.0}, rounds=10)
    # A fixed point is reached quickly and holds exactly thereafter.
    assert history[3] == history[4] == history[-1]
    assert settled(history[3], history[4], epsilon=0.0)


def test_reallocate_ramping_flow_reclaims_guarantee_in_one_round():
    # Start from a lending steady state, then b becomes backlogged.
    lent = _loop({"a": 200_000.0, "b": 10_000.0})[-1]
    observed = {"a": lent["a"], "b": lent["b"]}  # both now clipped
    new = reallocate(lent, observed, G, CAP)
    assert new["b"] >= G["b"] - 1e-6  # full guarantee back, one round
    assert new["a"] >= G["a"] - 1e-6  # the borrower keeps its own
    assert sum(new.values()) <= CAP + 1e-6


def test_reallocate_idle_flow_keeps_reclaim_floor():
    new = reallocate(G, {"a": 70_000.0, "b": 0.0}, G, CAP)
    assert new["b"] == pytest.approx(G["b"] * RECLAIM_FLOOR)
    assert new["b"] > 0


def test_reallocate_steady_sender_is_a_fixed_point():
    # A constant-rate flow must not oscillate on the hunger boundary.
    history = _loop({"a": 40_000.0, "b": 12_000.0}, rounds=8)
    final = history[-1]
    assert history[-2] == final
    assert final["a"] == pytest.approx(40_000.0 / SHRINK_FRACTION)
    assert 40_000.0 < HUNGRY_FRACTION * final["a"]  # outside hunger band


def test_reallocate_overshoot_trims_borrowed_surplus_first():
    # a holds borrowed surplus, b asks for its full guarantee back:
    # the trim must come out of a's surplus, not b's guarantee.
    allocations = {"a": 90_000.0, "b": 25_000.0}
    observed = {"a": 90_000.0, "b": 25_000.0}
    new = reallocate(allocations, observed, G, CAP)
    assert new["b"] >= G["b"] - 1e-6
    assert new["a"] == pytest.approx(CAP - new["b"])
    assert sum(new.values()) <= CAP + 1e-6


def test_reallocate_validates_inputs():
    assert reallocate({}, {}, {}, 10.0) == {}
    with pytest.raises(ValueError):
        reallocate({}, {}, {"a": 1.0}, 0.0)


def test_settled_epsilon_and_new_flows():
    assert settled({"a": 100.0}, {"a": 104.0}, epsilon=0.05)
    assert not settled({"a": 100.0}, {"a": 110.0}, epsilon=0.05)
    assert not settled({}, {"a": 100.0})  # a new flow is never settled


# -- MeterState (the switch-side token bucket) -----------------------------


def test_meter_shapes_to_rate():
    meter = MeterState(1, rate=1000.0, burst=0.0, max_queue=10.0)
    depart0, dropped0 = meter.shape(100, 0.0)
    depart1, dropped1 = meter.shape(100, 0.0)
    assert not dropped0 and not dropped1
    assert depart0 == pytest.approx(0.1)
    assert depart1 == pytest.approx(0.2)  # second frame queues behind
    assert meter.packets == 2 and meter.bytes == 200


def test_meter_burst_credit_absorbs_idle_gaps():
    meter = MeterState(1, rate=1000.0, burst=500.0, max_queue=10.0)
    depart, dropped = meter.shape(400, 5.0)  # long idle before arrival
    assert not dropped
    assert depart == pytest.approx(5.0)  # burst credit: no delay
    # Credit is capped at the burst: a flood still serializes.
    depart, dropped = meter.shape(400, 5.0)
    assert depart > 5.0


def test_meter_bounded_queue_drops_and_counts():
    meter = MeterState(1, rate=1000.0, burst=0.0, max_queue=0.15)
    assert meter.shape(100, 0.0) == (pytest.approx(0.1), False)
    depart, dropped = meter.shape(200, 0.0)  # would queue 0.3s > 0.15
    assert dropped and depart == 0.0
    assert meter.dropped_packets == 1 and meter.dropped_bytes == 200
    # A drop consumes no tokens: the next small frame still fits.
    assert meter.shape(40, 0.0)[1] is False
    entry = meter.stats_entry()
    assert (entry.packets, entry.dropped_packets) == (2, 1)
    assert (entry.bytes, entry.dropped_bytes) == (140, 200)


# -- integration: two topologies over one bottleneck link ------------------


LINK = 100_000.0
DURATION = 12.0


class _FloodSpout(Spout):
    def next_tuple(self, collector):
        collector.emit(("payload-x" * 3, 1.0))


class _CountSink(Bolt):
    def __init__(self, counts, name):
        self.counts = counts
        self.name = name

    def execute(self, stream_tuple, collector):
        self.counts[self.name] = self.counts.get(self.name, 0) + 1


def _pipeline(topology_id, rate, bandwidth, counts):
    builder = TopologyBuilder(topology_id, TopologyConfig(
        batch_size=20, max_spout_rate=rate))
    builder.set_spout("spout", _FloodSpout, 1,
                      demand=ResourceDemand(cpu=10.0, memory=400.0,
                                            bandwidth=bandwidth))
    builder.set_bolt("sink", lambda: _CountSink(counts, topology_id), 1,
                     demand=ResourceDemand(cpu=10.0, memory=2048.0,
                                           bandwidth=bandwidth)
                     ).shuffle_grouping("spout")
    return builder.build()


@pytest.fixture
def bottleneck():
    """Two pipelines whose only placement crosses h0 -> h1.

    h0 has the memory for both (small) spouts but neither (large)
    sink, so both flows share the annotated h0->h1 link: alpha offers
    ~4x the link's capacity, beta a light trickle.
    """
    engine = Engine()
    costs = DEFAULT_COSTS.scaled(lan_bandwidth_bytes_per_sec=LINK)
    cluster = Cluster([
        Host("h0", HostCapacity(cpu=100.0, memory=1024.0, bandwidth=LINK)),
        Host("h1", HostCapacity(cpu=100.0, memory=4096.0, bandwidth=LINK)),
    ])
    cluster.set_link_bandwidth("h0", "h1", LINK)
    typhoon = TyphoonCluster(engine, costs=costs, seed=1,
                             resource_aware=True, cluster=cluster)
    seen = set()
    for fabric in typhoon.fabric.hosts.values():
        for tunnel in fabric.tunnels.values():
            if id(tunnel) in seen:
                continue
            seen.add(id(tunnel))
            for host in (tunnel.host_a, tunnel.host_b):
                tunnel.channel_from(host).serialize = True
    counts = {}
    placements = {
        "alpha": typhoon.submit(_pipeline("alpha", 4000.0, 60_000.0,
                                          counts)),
        "beta": typhoon.submit(_pipeline("beta", 150.0, 20_000.0, counts)),
    }
    engine.run(until=DURATION)
    return typhoon, placements, counts


def _flows_by_app(snapshot):
    return {flow["app_id"]: flow for flow in snapshot["flows"]}


def test_bottleneck_placement_and_meters(bottleneck):
    typhoon, placements, _counts = bottleneck
    for physical in placements.values():
        hosts = {a.component: a.hostname
                 for a in physical.assignments.values()}
        assert hosts["spout"] == "h0" and hosts["sink"] == "h1"
    snapshot = typhoon.bandwidth_allocator.snapshot()
    assert snapshot["meters_installed"] == 2
    flows = _flows_by_app(snapshot)
    assert set(flows) == {1, 2}
    for flow in flows.values():
        assert (flow["src"], flow["dst"]) == ("h0", "h1")
    # Both meters live on the sending switch.
    switch = typhoon.fabric.hosts["h0"].switch
    assert {flow["meter_id"] for flow in flows.values()} == set(
        switch.meters)


def test_bottleneck_converges_within_bounded_rounds(bottleneck):
    typhoon, _placements, _counts = bottleneck
    snapshot = typhoon.bandwidth_allocator.snapshot()
    # The loop reallocated at least once (alpha borrowing from beta),
    # then reached a steady state well before the run ended and held
    # it for many consecutive rounds.
    assert snapshot["reallocations"] >= 1
    assert snapshot["last_change_time"] <= DURATION / 2.0
    assert snapshot["settled_rounds"] >= 8


def test_bottleneck_shares_are_fair_and_bounded(bottleneck):
    typhoon, _placements, _counts = bottleneck
    flows = _flows_by_app(typhoon.bandwidth_allocator.snapshot())
    alpha, beta = flows[1], flows[2]
    assert alpha["guarantee"] == pytest.approx(75_000.0)
    assert beta["guarantee"] == pytest.approx(25_000.0)
    # The backlogged flow holds at least its guarantee and borrows
    # beta's unused share; the lender never drops below its floor.
    assert alpha["allocation"] >= alpha["guarantee"] - 1e-6
    assert alpha["allocation"] > alpha["guarantee"] + 1_000.0
    assert beta["allocation"] >= beta["guarantee"] * RECLAIM_FLOOR - 1e-6
    assert (alpha["allocation"] + beta["allocation"]) <= LINK + 1e-6
    # Offered-load accounting saw alpha's demand, drops included.
    assert alpha["observed"] > LINK


def test_bottleneck_polices_without_starving(bottleneck):
    typhoon, _placements, counts = bottleneck
    flows = _flows_by_app(typhoon.bandwidth_allocator.snapshot())
    switch = typhoon.fabric.hosts["h0"].switch
    alpha_meter = switch.meters[flows[1]["meter_id"]]
    beta_meter = switch.meters[flows[2]["meter_id"]]
    # The backlogged flow is actively policed ...
    assert alpha_meter.dropped_packets > 0
    # ... while the light flow is never starved: no meter drops, and
    # end-to-end delivery keeps pace with its offered rate.
    assert beta_meter.dropped_packets == 0
    assert counts["beta"] >= 0.85 * 150.0 * (DURATION - 2.5)
    assert counts["alpha"] > counts["beta"]
